// Policy-layer suite (DESIGN.md §15): golden byte-parity for the
// extraction of the recovery strategies and the fixed startup policy,
// registry/capability units, the Badr–Lui–Khisti streaming code, the
// adaptive startup policies, and the session-level validation rules.
//
// The parity heart: every cell of policy_parity_cells.hpp, run serially,
// through run::run_sweep at two thread counts, and (lossless multicluster)
// at shard counts 1..3, must reproduce the bytes captured from the
// PRE-refactor tree (policy_parity_golden.inc) — the monolithic
// RecoveryProtocol with its RecoveryMode switches and the hard-wired
// playback-start slot.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/session.hpp"
#include "src/loss/model.hpp"
#include "src/loss/recovery.hpp"
#include "src/metrics/continuity.hpp"
#include "src/metrics/delay.hpp"
#include "src/net/topology.hpp"
#include "src/policy/registry.hpp"
#include "src/run/sweep.hpp"
#include "src/scheme/registry.hpp"
#include "src/sim/engine.hpp"
#include "tests/policy_parity_cells.hpp"
#include "tests/policy_parity_golden.inc"

namespace streamcast::core {
namespace {

using loss::RecoveryOptions;
using loss::RecoveryProtocol;
using loss::SequenceTracker;
using sim::Delivery;
using sim::Tx;

// --- golden byte-parity ----------------------------------------------------

/// Parses the golden capture into cell-id -> serialized report text.
std::map<std::string, std::string> parse_golden() {
  std::map<std::string, std::string> golden;
  std::istringstream in(kPolicyParityGolden);
  std::string line;
  std::string id;
  std::string body;
  auto flush = [&] {
    if (!id.empty()) golden[id] = body;
    body.clear();
  };
  while (std::getline(in, line)) {
    if (line.rfind("=== ", 0) == 0) {
      flush();
      id = line.substr(4);
    } else if (!line.empty()) {
      if (!body.empty()) body += '\n';
      body += line;
    }
  }
  flush();
  return golden;
}

TEST(PolicyParity, SerialCellsMatchPreRefactorGolden) {
  const auto golden = parse_golden();
  const auto lossy = policy_parity_cells();
  const auto shard = policy_shard_cells();
  ASSERT_EQ(golden.size(), lossy.size() + shard.size())
      << "cell list and golden capture drifted";
  for (const PolicyParityCell& cell : lossy) {
    const auto it = golden.find(cell.id);
    ASSERT_NE(it, golden.end()) << "no golden for cell: " << cell.id;
    const LossRunResult r = StreamingSession(cell.cfg).run_lossy();
    EXPECT_EQ(serialize(r), it->second) << "parity break in cell: " << cell.id;
  }
  for (const PolicyParityCell& cell : shard) {
    const auto it = golden.find(cell.id);
    ASSERT_NE(it, golden.end()) << "no golden for cell: " << cell.id;
    EXPECT_EQ(serialize(StreamingSession(cell.cfg).run()), it->second)
        << "parity break in cell: " << cell.id;
  }
}

TEST(PolicyParity, SweepThreadCountsMatchPreRefactorGolden) {
  const auto golden = parse_golden();
  const auto cells = policy_parity_cells();
  std::vector<SessionConfig> tasks;
  tasks.reserve(cells.size());
  for (const PolicyParityCell& cell : cells) tasks.push_back(cell.cfg);
  for (const int threads : {1, 8}) {
    const auto results = run::run_sweep(tasks, {.threads = threads});
    run::require_all(results);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto it = golden.find(cells[i].id);
      ASSERT_NE(it, golden.end());
      const std::string got =
          serialize(LossRunResult{results[i].qos, results[i].loss, {}});
      EXPECT_EQ(got, it->second) << "threads=" << threads
                                 << " parity break in cell: " << cells[i].id;
    }
  }
}

// --- registries ------------------------------------------------------------

TEST(PolicyRegistry, RecoveryEntriesAndCaps) {
  const auto all = policy::recovery_policies();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_FALSE(policy::recovery_policy("none").caps.reverse_channel);
  const auto& nack = policy::recovery_policy("nack");
  EXPECT_TRUE(nack.caps.reverse_channel);
  EXPECT_TRUE(nack.caps.closes_silent_gaps);
  EXPECT_FALSE(nack.caps.emits_parity);
  const auto& fec = policy::recovery_policy("xor-parity");
  EXPECT_TRUE(fec.caps.emits_parity);
  EXPECT_FALSE(fec.caps.bounded_recovery);
  const auto& code = policy::recovery_policy("streaming-code");
  EXPECT_TRUE(code.caps.emits_parity);
  EXPECT_TRUE(code.caps.bounded_recovery);
  EXPECT_FALSE(code.caps.closes_silent_gaps);
  EXPECT_THROW(policy::recovery_policy("fountain"), std::invalid_argument);
  // The legacy enum maps onto registry names (the compatibility seam the
  // parity cells rely on).
  EXPECT_STREQ(policy::recovery_policy_name(policy::RecoveryMode::kNone),
               "none");
  EXPECT_STREQ(policy::recovery_policy_name(policy::RecoveryMode::kNack),
               "nack");
  EXPECT_STREQ(policy::recovery_policy_name(policy::RecoveryMode::kFec),
               "xor-parity");
}

TEST(PolicyRegistry, StartupEntriesAndCaps) {
  ASSERT_EQ(policy::startup_policies().size(), 3u);
  EXPECT_FALSE(policy::startup_policy("fixed").caps.adaptive);
  EXPECT_TRUE(policy::startup_policy("progressive-ramp").caps.adaptive);
  EXPECT_TRUE(policy::startup_policy("loss-adaptive").caps.adaptive);
  EXPECT_THROW(policy::startup_policy("instant"), std::invalid_argument);
}

// --- startup policies on synthetic contexts --------------------------------

policy::StartupContext synthetic_context() {
  policy::StartupContext ctx;
  ctx.window = 100;
  ctx.horizon = 400;
  ctx.worst_delay = 40;
  ctx.first_arrival = 10;
  ctx.drops = 0;
  ctx.deliveries = 1000;
  ctx.replay = [](Slot) { return policy::PlaybackProbe{}; };
  return ctx;
}

TEST(StartupPolicies, FixedUsesConfiguredSlotElseWorstDelay) {
  const auto fixed = policy::startup_policy("fixed").make({});
  auto ctx = synthetic_context();
  EXPECT_EQ(fixed->start_slot(ctx), 40);
  ctx.fixed_start = 7;
  EXPECT_EQ(fixed->start_slot(ctx), 7);
  ctx.fixed_start = 0;
  EXPECT_EQ(fixed->start_slot(ctx), 0);
}

TEST(StartupPolicies, ProgressiveRampDoublesUntilBudgetMet) {
  policy::StartupOptions opts;
  opts.policy = "progressive-ramp";
  opts.ramp_initial = 1;
  const auto ramp = policy::startup_policy(opts.policy).make(opts);
  auto ctx = synthetic_context();
  // Replays stall until the prebuffer reaches 8 slots past first arrival.
  ctx.replay = [](Slot start) {
    policy::PlaybackProbe probe;
    probe.stalls = start >= 18 ? 0 : 3;
    return probe;
  };
  EXPECT_EQ(ramp->start_slot(ctx), 18);  // 10 + 8 after 1, 2, 4 failed
  // Never later than the fixed slot, even when no candidate meets the
  // budget.
  ctx.replay = [](Slot) { return policy::PlaybackProbe{.stalls = 9}; };
  EXPECT_EQ(ramp->start_slot(ctx), 40);
  ctx.fixed_start = 12;
  EXPECT_EQ(ramp->start_slot(ctx), 12);
}

TEST(StartupPolicies, LossAdaptiveScalesPrebufferWithLossFraction) {
  policy::StartupOptions opts;
  opts.policy = "loss-adaptive";
  opts.adapt_safety = 2.0;
  opts.adapt_min = 1;
  const auto adaptive = policy::startup_policy(opts.policy).make(opts);
  auto ctx = synthetic_context();
  // Lossless: the minimum prebuffer right after the first arrival.
  EXPECT_EQ(adaptive->start_slot(ctx), 11);
  // 5% loss over a 100-packet window: 1 + ceil(2 * 0.05 * 100) = 11 slots.
  ctx.drops = 50;
  ctx.deliveries = 950;
  EXPECT_EQ(adaptive->start_slot(ctx), 21);
  // Capped by the fixed slot under heavy loss.
  ctx.drops = 900;
  ctx.deliveries = 100;
  EXPECT_EQ(adaptive->start_slot(ctx), 40);
}

// --- session wiring --------------------------------------------------------

TEST(PolicySession, UnknownPolicyNamesRejected) {
  SessionConfig cfg{.scheme = Scheme::kChain, .n = 4, .d = 1};
  cfg.loss.recovery_policy = "fountain";
  EXPECT_THROW(StreamingSession{cfg}, std::invalid_argument);
  cfg.loss.recovery_policy.clear();
  cfg.startup.policy = "instant";
  EXPECT_THROW(StreamingSession{cfg}, std::invalid_argument);
  cfg.startup.policy = "fixed";
  cfg.loss.code.burst = 0;
  EXPECT_THROW(StreamingSession{cfg}, std::invalid_argument);
}

TEST(PolicySession, BoundedRecoveryRejectedOnDemandDrivenSchemes) {
  SessionConfig cfg{.scheme = Scheme::kHypercube, .n = 7, .d = 1};
  cfg.loss.model = loss::ErasureKind::kBernoulli;
  cfg.loss.rate = 0.05;
  cfg.loss.recovery_policy = "streaming-code";
  EXPECT_THROW(StreamingSession{cfg}, std::invalid_argument);
  cfg.scheme = Scheme::kChain;  // link-visible losses: accepted
  EXPECT_NO_THROW(StreamingSession{cfg});
}

TEST(PolicySession, AdaptiveStartupDisablesClosedFormReplay) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeStructured, .n = 40, .d = 2};
  ASSERT_TRUE(StreamingSession::replay_eligible(cfg));
  cfg.startup.policy = "loss-adaptive";
  EXPECT_FALSE(StreamingSession::replay_eligible(cfg));
  cfg.startup.policy = "progressive-ramp";
  EXPECT_FALSE(StreamingSession::replay_eligible(cfg));
}

TEST(PolicySession, RunStartupReportsRampEarlierThanFixed) {
  SessionConfig cfg{.scheme = Scheme::kChain, .n = 10, .d = 1};
  const StartupRunResult fixed = StreamingSession(cfg).run_startup();
  EXPECT_EQ(fixed.startup.policy, "fixed");
  EXPECT_EQ(fixed.startup.max_start, fixed.qos.worst_delay);
  EXPECT_EQ(fixed.startup.stalls, 0);

  cfg.startup.policy = "progressive-ramp";
  const StartupRunResult ramp = StreamingSession(cfg).run_startup();
  EXPECT_EQ(ramp.startup.policy, "progressive-ramp");
  // The chain delivers in order at rate 1, so a one-slot prebuffer after
  // each receiver's first arrival already plays without stalling — strictly
  // earlier than the worst-delay fixed start, at zero stalls.
  EXPECT_EQ(ramp.startup.stalls, 0);
  EXPECT_LT(ramp.startup.earliest_start, fixed.startup.max_start);
  EXPECT_LE(ramp.startup.max_start, fixed.startup.max_start);
  // The same schedule bytes underneath: the startup policy only moves the
  // replay cursor, never the simulation.
  EXPECT_EQ(serialize(ramp.qos), serialize(fixed.qos));
}

TEST(PolicySession, LossAdaptiveStartupOnLossyRun) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeGreedy, .n = 15, .d = 2};
  cfg.loss.model = loss::ErasureKind::kBernoulli;
  cfg.loss.rate = 0.05;
  cfg.loss.seed = 11;
  cfg.startup.policy = "loss-adaptive";
  const LossRunResult r = StreamingSession(cfg).run_lossy();
  EXPECT_EQ(r.startup.policy, "loss-adaptive");
  EXPECT_GT(r.startup.max_start, 0);
  EXPECT_LE(r.startup.max_start, r.qos.worst_delay);
  EXPECT_LE(r.startup.earliest_start, r.startup.max_start);
  const std::string line = serialize(r.startup);
  EXPECT_NE(line.find("startup policy=loss-adaptive"), std::string::npos);
  EXPECT_NE(line.find("max_finish="), std::string::npos);
}

// --- continuity startup edges ----------------------------------------------

Tx data(NodeKey from, NodeKey to, PacketId p) {
  return Tx{.from = from, .to = to, .packet = p, .tag = 0};
}

TEST(ContinuityStartup, StartSlotZeroCountsLeadingWait) {
  metrics::ContinuityRecorder rec(2, 3);
  for (PacketId p = 0; p < 3; ++p) {
    rec.on_delivery(
        Delivery{.sent = 4 + p, .received = 4 + p, .tx = data(0, 1, p)});
  }
  const auto r = rec.report(1, /*playback_start=*/0, /*horizon=*/50);
  EXPECT_EQ(r.stalls, 1);       // one wait for packet 0, then rate-1 flow
  EXPECT_EQ(r.stall_slots, 4);  // slots 0..3
  EXPECT_EQ(r.undecodable, 0);
  EXPECT_EQ(r.finish_slot, 7);
  EXPECT_EQ(rec.first_arrival(1), 4);
}

TEST(ContinuityStartup, StartBeyondStreamEndPlaysWithoutStalling) {
  metrics::ContinuityRecorder rec(2, 3);
  for (PacketId p = 0; p < 3; ++p) {
    rec.on_delivery(
        Delivery{.sent = 4 + p, .received = 4 + p, .tx = data(0, 1, p)});
  }
  // Everything arrived long before the start slot — even one past the
  // horizon: arrivals below the horizon stay playable, so the replay is a
  // pure pass-through ending at start + window.
  const auto r = rec.report(1, /*playback_start=*/60, /*horizon=*/50);
  EXPECT_EQ(r.stalls, 0);
  EXPECT_EQ(r.stall_slots, 0);
  EXPECT_EQ(r.undecodable, 0);
  EXPECT_EQ(r.finish_slot, 63);
}

TEST(ContinuityStartup, FirstArrivalOfSilentReceiverIsNever) {
  metrics::ContinuityRecorder rec(3, 4);
  EXPECT_EQ(rec.first_arrival(2), metrics::kNeverArrived);
}

// --- the streaming code ----------------------------------------------------

/// Scripted inner protocol: replays (slot, Tx) and records deliveries.
class Scripted final : public sim::Protocol {
 public:
  void at(Slot t, Tx t_x) { script_.emplace_back(t, t_x); }

  void transmit(Slot t, std::vector<Tx>& out) override {
    for (const auto& [slot, item] : script_) {
      if (slot == t) out.push_back(item);
    }
  }
  void deliver(Slot t, const Tx& t_x) override {
    delivered.push_back(Delivery{.sent = -1, .received = t, .tx = t_x});
  }

  std::vector<Delivery> delivered;

 private:
  std::vector<std::pair<Slot, Tx>> script_;
};

/// Deterministic loss: erases the nth transmission of each listed packet id.
class DropSpecific final : public loss::LossModel {
 public:
  void drop(PacketId p, int times = 1) { budget_[p] = times; }

  bool erased(Slot, const Tx& t_x) override {
    auto it = budget_.find(t_x.packet);
    if (it == budget_.end() || it->second == 0) return false;
    --it->second;
    return true;
  }

 private:
  std::map<PacketId, int> budget_;
};

RecoveryOptions streaming_code_options(Slot decode_delay, PacketId burst) {
  RecoveryOptions opts;
  opts.policy = "streaming-code";
  opts.code.decode_delay = decode_delay;
  opts.code.burst = burst;
  return opts;
}

TEST(StreamingCode, DecodesErasureRunWithinBurstBound) {
  net::UniformCluster base(2, 1);
  net::ProvisionedTopology topo(base, 1, 1);
  Scripted inner;
  for (Slot t = 0; t < 8; ++t) inner.at(t, data(0, 1, t));
  RecoveryProtocol recovery(topo, inner, streaming_code_options(4, 2));
  DropSpecific model;
  model.drop(2);
  sim::Engine engine(topo, recovery);
  engine.set_loss_model(&model);
  engine.add_observer(recovery);
  engine.run_until(24);

  EXPECT_EQ(recovery.stats().fec_decodes, 1);
  EXPECT_EQ(recovery.stats().unrecoverable, 0);
  EXPECT_EQ(recovery.stats().retransmissions, 0);  // no reverse channel
  EXPECT_GT(recovery.stats().parity_transmissions, 0);
  EXPECT_EQ(recovery.stats().max_erasure_run, 1);
  EXPECT_EQ(recovery.gap_free_prefix(1), 8);
  EXPECT_TRUE(recovery.recovery_exhausted());
  // In-order hand-off: the wrapped protocol saw a gapless stream.
  ASSERT_EQ(inner.delivered.size(), 8u);
  for (PacketId p = 0; p < 8; ++p) {
    EXPECT_EQ(inner.delivered[static_cast<std::size_t>(p)].tx.packet, p);
  }
}

TEST(StreamingCode, RunBeyondBurstBoundIsAbandonedNotStalled) {
  net::UniformCluster base(2, 1);
  net::ProvisionedTopology topo(base, 1, 1);
  Scripted inner;
  for (Slot t = 0; t < 8; ++t) inner.at(t, data(0, 1, t));
  // B = 1: packets 0 and 1 erase back-to-back channel uses, a run of 2 the
  // code cannot correct. The window must be declared undecodable — the gate
  // retires, later packets flush through — instead of draining forever.
  RecoveryProtocol recovery(topo, inner, streaming_code_options(4, 1));
  DropSpecific model;
  model.drop(0);
  model.drop(1);
  sim::Engine engine(topo, recovery);
  engine.set_loss_model(&model);
  engine.add_observer(recovery);
  engine.run_until(32);

  EXPECT_EQ(recovery.stats().unrecoverable, 2);
  EXPECT_EQ(recovery.stats().max_erasure_run, 2);
  EXPECT_EQ(recovery.stats().fec_decodes, 0);
  EXPECT_EQ(recovery.gap_free_prefix(1), 0);  // the gap is never repaired
  EXPECT_TRUE(recovery.recovery_exhausted());
  // Playback continuity sees packets 2.. delivered despite the dead gap.
  ASSERT_EQ(inner.delivered.size(), 6u);
  EXPECT_EQ(inner.delivered.front().tx.packet, 2);
}

TEST(StreamingCode, SessionGeBurstLongerThanDecodeDelayReportsUndecodable) {
  SessionConfig cfg{.scheme = Scheme::kChain, .n = 8, .d = 1};
  cfg.window = 64;
  cfg.loss.model = loss::ErasureKind::kGilbertElliott;
  // Long bad spells (mean burst 10) against a code with T = 4, B = 2: some
  // window must die. The run has to terminate and account the dead gaps as
  // undecodable playback, not drain until max_drain hunting for a repair
  // that can never come.
  cfg.loss.ge = {.p_enter = 0.05, .p_recover = 0.1, .loss_good = 0.0,
                 .loss_bad = 1.0};
  cfg.loss.seed = 0xb10c;
  cfg.loss.recovery_policy = "streaming-code";
  cfg.loss.code = {.decode_delay = 4, .burst = 2};
  cfg.loss.max_drain = 4096;
  const LossRunResult r = StreamingSession(cfg).run_lossy();
  EXPECT_GT(r.loss.unrecoverable, 0);
  EXPECT_GT(r.loss.undecodable, 0);
  EXPECT_FALSE(r.loss.all_gap_free);
  EXPECT_GT(r.loss.max_erasure_run, 2);
  // The bounded-recovery drain stop fired long before the drain budget.
  EXPECT_LT(r.loss.drain_slots, 4096);
}

TEST(StreamingCode, SessionGuaranteedRegionHasNoUndecodableGaps) {
  SessionConfig cfg{.scheme = Scheme::kChain, .n = 8, .d = 1};
  cfg.window = 64;
  cfg.loss.model = loss::ErasureKind::kGilbertElliott;
  // Short, rare bursts against a generous code (T = 12, B = 4): this seed
  // stays inside the code's guaranteed region (no erasure run beyond B, no
  // guard-space collision), where Badr–Lui–Khisti decode is certain.
  cfg.loss.ge = {.p_enter = 0.01, .p_recover = 0.9, .loss_good = 0.0,
                 .loss_bad = 1.0};
  cfg.loss.seed = 0x900d;
  cfg.loss.recovery_policy = "streaming-code";
  cfg.loss.code = {.decode_delay = 12, .burst = 4};
  cfg.loss.max_drain = 4096;
  const LossRunResult r = StreamingSession(cfg).run_lossy();
  ASSERT_GT(r.loss.drops, 0);
  ASSERT_LE(r.loss.max_erasure_run, 4);
  ASSERT_EQ(r.loss.guard_collisions, 0);
  EXPECT_EQ(r.loss.unrecoverable, 0);
  EXPECT_EQ(r.loss.undecodable, 0);
  EXPECT_TRUE(r.loss.all_gap_free);
  EXPECT_GT(r.loss.fec_decodes, 0);
}

// --- churn backfill seams (satellite: dynamic-trees repair channel) --------

TEST(SequenceTrackerStartAt, SeatsJoinerAtLiveEdge) {
  SequenceTracker tr;
  tr.mark(0);
  tr.mark(7);
  tr.start_at(5);
  EXPECT_EQ(tr.gap_free_prefix(), 5);  // 0..4 forgiven, 5..6 still owed
  EXPECT_TRUE(tr.has(7));
  tr.mark(5);
  tr.mark(6);
  EXPECT_EQ(tr.gap_free_prefix(), 8);
  tr.start_at(3);  // never moves backwards
  EXPECT_EQ(tr.gap_free_prefix(), 8);
  // Seating exactly on contiguous ahead packets swallows them.
  SequenceTracker fresh;
  fresh.mark(9);
  fresh.mark(10);
  fresh.start_at(9);
  EXPECT_EQ(fresh.gap_free_prefix(), 11);
}

TEST(ChurnBackfillCaps, OnlyDynamicTreesOptsIn) {
  for (const scheme::Descriptor& d : scheme::all()) {
    EXPECT_EQ(d.caps.churn_backfill, d.id == Scheme::kDynamicTrees)
        << d.name;
  }
}

}  // namespace
}  // namespace streamcast::core
