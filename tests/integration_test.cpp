// Cross-module integration tests pinning behaviors that individual module
// suites don't: exact backbone arrival timing, dummy-slot silence,
// steady-state throughput accounting, and the feeder's spare capacity.
#include <gtest/gtest.h>

#include "src/hypercube/protocol.hpp"
#include "src/metrics/delay.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/trace.hpp"
#include "src/supertree/protocol.hpp"

namespace streamcast {
namespace {

class TraceObserver final : public sim::DeliveryObserver {
 public:
  explicit TraceObserver(sim::Trace& trace) : trace_(trace) {}
  void on_delivery(const sim::Delivery& d) override { trace_.record(d); }

 private:
  sim::Trace& trace_;
};

TEST(Integration, BackbonePipelineTimingIsExact) {
  // Packet j reaches the depth-L super node in slot j + L*T_c - 1 and its
  // local root one T_i later, for every packet after warm-up.
  const sim::Slot t_c = 7;
  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      9, net::ClusteredTopology::ClusterSpec{4});
  net::ClusteredTopology topo(specs, 3, 2, t_c);
  supertree::SuperTreeProtocol proto(topo);
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  TraceObserver obs(trace);
  engine.add_observer(obs);
  engine.run_until(60);

  // offset(c): packet j reaches S_c in slot j + offset(c). The first hop is
  // T_i for cluster 0 (the source sits in cluster 0 by convention) and T_c
  // otherwise; every further hop costs one relay slot plus T_c.
  std::vector<sim::Slot> offset(9);
  for (int c = 0; c < 9; ++c) {
    const int parent = proto.backbone().parent[static_cast<std::size_t>(c)];
    offset[static_cast<std::size_t>(c)] =
        parent < 0 ? (c == 0 ? 1 : t_c) - 1
                   : offset[static_cast<std::size_t>(parent)] + t_c;
  }
  for (int c = 0; c < 9; ++c) {
    for (const auto& d : trace.received_by(topo.super_node(c))) {
      EXPECT_EQ(d.received, d.tx.packet + offset[static_cast<std::size_t>(c)])
          << "cluster " << c << " packet " << d.tx.packet;
    }
    for (const auto& d : trace.received_by(topo.local_root(c))) {
      EXPECT_EQ(d.received,
                d.tx.packet + offset[static_cast<std::size_t>(c)] + 1)
          << "cluster " << c;
    }
  }
}

TEST(Integration, DummySlotsAreNeverAddressed) {
  // N = 16, d = 3 pads to 18 with dummies 17, 18: the engine must never see
  // a key above 16 — dummies are "removed in the real system".
  const multitree::Forest f = multitree::build_greedy(16, 3);
  ASSERT_EQ(f.n_pad(), 18);
  net::UniformCluster topo(16, 3);
  multitree::MultiTreeProtocol proto(f);
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  TraceObserver obs(trace);
  engine.add_observer(obs);
  engine.run_until(60);
  for (const auto& d : trace.all()) {
    EXPECT_LE(d.tx.to, 16);
    EXPECT_LE(d.tx.from, 16);
  }
  // And the dummies' round-robin turns are real: the source still uses only
  // d sends per slot, so throughput per slot is at most N (one receive per
  // node) and at least N - d (skipped dummy turns).
  const auto slot50 = trace.sent_in(50);
  EXPECT_GE(slot50.size(), 16u - 3u);
  EXPECT_LE(slot50.size(), 16u);
}

TEST(Integration, SteadyStateThroughputIsOnePacketPerNodePerSlot) {
  // Multi-tree: after warm-up, exactly one delivery per receiver per slot.
  const multitree::Forest f = multitree::build_greedy(27, 3);
  net::UniformCluster topo(27, 3);
  multitree::MultiTreeProtocol proto(f);
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  TraceObserver obs(trace);
  engine.add_observer(obs);
  engine.run_until(80);
  const sim::Slot warmup = multitree::worst_delay_bound(27, 3) + 3;
  for (sim::Slot t = warmup; t < 75; ++t) {
    EXPECT_EQ(trace.sent_in(t).size(), 27u) << "slot " << t;
  }
}

TEST(Integration, CubeFeederSendsNothingInCube) {
  // §3.2's spare capacity: in every steady-state slot, the vertex paired
  // with the source receives the fresh packet and sends nothing (single
  // cube; in a chain that send feeds the next cube).
  const sim::NodeKey n = 15;  // k = 4
  net::UniformCluster topo(n, 1);
  hypercube::HypercubeProtocol proto({hypercube::decompose_chain(n)});
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  TraceObserver obs(trace);
  engine.add_observer(obs);
  engine.run_until(40);
  for (sim::Slot t = 8; t < 36; ++t) {
    // Who received from the source this slot?
    sim::NodeKey fresh = -1;
    for (const auto& d : trace.sent_in(t)) {
      if (d.tx.from == 0) fresh = d.tx.to;
    }
    ASSERT_NE(fresh, -1) << "slot " << t;
    for (const auto& d : trace.sent_in(t)) {
      EXPECT_NE(d.tx.from, fresh) << "feeder sent in-cube at slot " << t;
    }
    // And everyone else sends exactly once: N-1 + 1 source send = N.
    EXPECT_EQ(trace.sent_in(t).size(), static_cast<std::size_t>(n));
  }
}

TEST(Integration, MultiTreeTagsMatchPacketResidue) {
  const multitree::Forest f = multitree::build_greedy(15, 3);
  net::UniformCluster topo(15, 3);
  multitree::MultiTreeProtocol proto(f);
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  TraceObserver obs(trace);
  engine.add_observer(obs);
  engine.run_until(30);
  for (const auto& d : trace.all()) {
    EXPECT_EQ(d.tx.tag, d.tx.packet % 3);
  }
}

}  // namespace
}  // namespace streamcast
