// Golden byte-parity cells for the policy-layer refactor (DESIGN.md §15).
//
// The recovery strategies (none / NACK / XOR parity) were factored out of
// the monolithic loss::RecoveryProtocol into src/policy, and the fixed
// playback-start slot consumed by metrics/continuity became the `fixed`
// startup policy. Both moves must be byte-invisible: every cell below is a
// fully-specified SessionConfig whose serialized LossRunResult (or QosReport
// for the lossless sharded cells) was captured from the PRE-refactor tree
// and committed in policy_parity_golden.inc. The parity suite re-runs the
// cells through the policy registry — serially, through run::run_sweep at
// several thread counts, and (for the multicluster cells) at several shard
// counts — and asserts the bytes did not move.
//
// Shared between the parity test and the golden-capture utility
// (policy_golden_capture.cpp), so the cell list cannot drift from the
// goldens. Only config fields that exist on both sides of the refactor are
// used: the legacy RecoveryMode enum (mapped to registry names by the new
// layer) and LossConfig::playback_start (the fixed startup policy's slot).
#pragma once

#include <string>
#include <vector>

#include "src/core/config.hpp"

namespace streamcast::core {

struct PolicyParityCell {
  std::string id;
  SessionConfig cfg;
};

inline std::vector<PolicyParityCell> policy_parity_cells() {
  std::vector<PolicyParityCell> cells;

  // xor-parity (the legacy RecoveryMode::kFec wiring) across schemes, parity
  // window sizes, channel models, and fixed playback starts.
  {
    SessionConfig fec{.scheme = Scheme::kMultiTreeGreedy, .n = 21, .d = 2};
    fec.loss.model = loss::ErasureKind::kBernoulli;
    fec.loss.rate = 0.05;
    fec.loss.seed = 0xfec5;
    fec.loss.recovery = loss::RecoveryMode::kFec;
    cells.push_back({"xor-parity multi-tree/greedy start=worst", fec});
    SessionConfig s0 = fec;
    s0.loss.playback_start = 0;
    cells.push_back({"xor-parity multi-tree/greedy start=0", s0});
    SessionConfig s5 = fec;
    s5.loss.playback_start = 5;
    cells.push_back({"xor-parity multi-tree/greedy start=5", s5});
  }
  {
    SessionConfig fec{.scheme = Scheme::kChain, .n = 12, .d = 1};
    fec.loss.model = loss::ErasureKind::kBernoulli;
    fec.loss.rate = 0.1;
    fec.loss.seed = 0x0dd5;
    fec.loss.recovery = loss::RecoveryMode::kFec;
    fec.loss.fec_window = 4;
    cells.push_back({"xor-parity chain fec_window=4", fec});
  }
  {
    SessionConfig fec{.scheme = Scheme::kSingleTree, .n = 14, .d = 2};
    fec.loss.model = loss::ErasureKind::kBernoulli;
    fec.loss.rate = 0.06;
    fec.loss.seed = 0x51ee;
    fec.loss.recovery = loss::RecoveryMode::kFec;
    fec.loss.playback_start = 2;
    cells.push_back({"xor-parity single-tree start=2", fec});
  }
  {
    SessionConfig ge{.scheme = Scheme::kMultiTreeGreedy, .n = 21, .d = 2};
    ge.loss.model = loss::ErasureKind::kGilbertElliott;
    ge.loss.seed = 0x6e12;
    ge.loss.recovery = loss::RecoveryMode::kFec;
    cells.push_back({"xor-parity multi-tree/greedy ge", ge});
  }

  // Fixed-startup NACK cells: explicit playback_start values exercise the
  // fixed startup policy's configured-slot branch (instead of the worst-
  // delay default) on both schedule families.
  {
    SessionConfig nk{.scheme = Scheme::kMultiTreeStructured,
                     .n = 15,
                     .d = 2,
                     .mode = multitree::StreamMode::kLivePrebuffered};
    nk.loss.model = loss::ErasureKind::kBernoulli;
    nk.loss.rate = 0.08;
    nk.loss.seed = 0xd00d;
    nk.loss.playback_start = 0;
    cells.push_back({"nack multi-tree/structured live-pre start=0", nk});
  }
  {
    SessionConfig nk{.scheme = Scheme::kHypercube, .n = 15, .d = 1};
    nk.loss.model = loss::ErasureKind::kBernoulli;
    nk.loss.rate = 0.08;
    nk.loss.seed = 0xd00d;
    nk.loss.playback_start = 3;
    cells.push_back({"nack hypercube start=3", nk});
  }

  // The 'none' policy: gaps stay open, drain gives up at max_drain, and the
  // incomplete receivers are accounted instead of repaired.
  {
    SessionConfig none{.scheme = Scheme::kChain, .n = 10, .d = 1};
    none.loss.model = loss::ErasureKind::kBernoulli;
    none.loss.rate = 0.05;
    none.loss.seed = 0x5eed;
    none.loss.recovery = loss::RecoveryMode::kNone;
    none.loss.max_drain = 256;
    cells.push_back({"none chain", none});
  }
  return cells;
}

/// Lossless multicluster cells run at shard counts 1..3: the policy layer
/// must leave the sharded path byte-identical (startup defaults to `fixed`,
/// recovery is never wired for lossless runs).
inline std::vector<PolicyParityCell> policy_shard_cells() {
  std::vector<PolicyParityCell> cells;
  for (int shards = 1; shards <= 3; ++shards) {
    SessionConfig mc{.scheme = Scheme::kMultiTreeGreedy,
                     .n = 8,
                     .d = 2,
                     .clusters = 3,
                     .big_d = 3,
                     .t_c = 4,
                     .shards = shards};
    cells.push_back(
        {"fixed-startup multicluster shards=" + std::to_string(shards), mc});
  }
  return cells;
}

}  // namespace streamcast::core
