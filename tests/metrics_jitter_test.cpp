// Jitter tests: Observation 2 as a machine-checked invariant — the
// multi-tree schedule delivers with *exactly* stride-d period, the
// hypercube with exactly stride-1 period, and the chain trivially.
#include <gtest/gtest.h>

#include "src/hypercube/analysis.hpp"
#include "src/hypercube/protocol.hpp"
#include "src/metrics/jitter.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"

namespace streamcast::metrics {
namespace {

TEST(StrideJitter, HandBuiltGaps) {
  DelayRecorder rec(2, 6);
  const Slot arrivals[] = {0, 5, 2, 7, 4, 9};  // stride 2 gaps: all 2
  for (PacketId j = 0; j < 6; ++j) {
    rec.on_delivery(sim::Delivery{
        .sent = arrivals[j],
        .received = arrivals[j],
        .tx = {.from = 0, .to = 1, .packet = j, .tag = 0}});
  }
  const auto s = stride_jitter(rec, 1, 2);
  EXPECT_EQ(s.samples, 4u);
  EXPECT_EQ(s.min_gap, 2);
  EXPECT_EQ(s.max_gap, 2);
  EXPECT_DOUBLE_EQ(s.peak_deviation, 0);
  // Stride 1 alternates +5 / -3.
  const auto s1 = stride_jitter(rec, 1, 1);
  EXPECT_EQ(s1.min_gap, -3);
  EXPECT_EQ(s1.max_gap, 5);
}

TEST(EventJitter, HandBuiltBursts) {
  DelayRecorder rec(2, 4);
  const Slot arrivals[] = {0, 1, 1, 7};  // sorted gaps 1, 0, 6
  for (PacketId j = 0; j < 4; ++j) {
    rec.on_delivery(sim::Delivery{
        .sent = arrivals[j],
        .received = arrivals[j],
        .tx = {.from = 0, .to = static_cast<sim::NodeKey>(j == 2 ? 0 : 1),
               .packet = j, .tag = 0}});
  }
  // Node 1 received packets 0,1,3 at slots 0,1,7.
  const auto s = event_jitter(rec, 1);
  EXPECT_EQ(s.samples, 2u);
  EXPECT_EQ(s.min_gap, 1);
  EXPECT_EQ(s.max_gap, 6);
}

TEST(StrideJitter, RejectsBadStride) {
  DelayRecorder rec(2, 4);
  EXPECT_THROW(stride_jitter(rec, 1, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Observation 2 on the real schemes.
// ---------------------------------------------------------------------------

TEST(ObservationTwo, MultiTreeIsExactlyPeriodicAtStrideD) {
  for (const int d : {2, 3, 4}) {
    for (const sim::NodeKey n : {15, 40, 121}) {
      const multitree::Forest f = multitree::build_greedy(n, d);
      net::UniformCluster topo(n, d);
      multitree::MultiTreeProtocol proto(f);
      sim::Engine engine(topo, proto);
      const PacketId window = 4 * d * (f.height() + 2);
      DelayRecorder rec(n + 1, window);
      engine.add_observer(rec);
      engine.run_until(window + multitree::worst_delay_bound(n, d) + 3 * d +
                       4);
      for (sim::NodeKey x = 1; x <= n; ++x) {
        // Past the first round of d packets, every stride-d gap is exactly
        // d: Observation 2, verbatim.
        const auto s = stride_jitter(rec, x, d, /*warmup=*/d);
        ASSERT_GT(s.samples, 0u);
        EXPECT_EQ(s.min_gap, d) << "n=" << n << " d=" << d << " x=" << x;
        EXPECT_EQ(s.max_gap, d);
        EXPECT_DOUBLE_EQ(s.peak_deviation, 0);
        // And event gaps never exceed d (one packet per tree per round).
        const auto e = event_jitter(rec, x, /*warmup=*/d);
        EXPECT_LE(e.max_gap, d);
      }
    }
  }
}

TEST(ObservationTwo, HypercubePeriodicAtStrideKAndOnePacketPerSlot) {
  for (const sim::NodeKey n : {7, 31, 50}) {
    net::UniformCluster topo(n, 1);
    const auto chain = hypercube::decompose_chain(n);
    hypercube::HypercubeProtocol proto({chain});
    sim::Engine engine(topo, proto);
    const PacketId window = 3 * hypercube::worst_delay(n) + 24;
    DelayRecorder rec(n + 1, window);
    engine.add_observer(rec);
    engine.run_until(window + hypercube::worst_delay(n) + 4);
    const auto warmup = static_cast<PacketId>(hypercube::worst_delay(n));
    for (const auto& seg : chain) {
      for (sim::NodeKey x = seg.first; x < seg.first + seg.receivers(); ++x) {
        // Per-residue periodicity: the cube's pairing repeats every k
        // slots, so stride-k gaps are exactly k.
        const auto s = stride_jitter(rec, x, seg.k, warmup);
        ASSERT_GT(s.samples, 0u);
        EXPECT_EQ(s.min_gap, seg.k) << "n=" << n << " x=" << x;
        EXPECT_EQ(s.max_gap, seg.k) << "n=" << n << " x=" << x;
        // And in event time, essentially one packet per slot (the O(1)
        // buffer claim depends on this). Gaps up to k appear only at the
        // warmup boundary, where filtered pre-warmup packets occupy slots.
        const auto e = event_jitter(rec, x, warmup);
        EXPECT_EQ(e.min_gap, 1) << "n=" << n << " x=" << x;
        EXPECT_LE(e.max_gap, seg.k) << "n=" << n << " x=" << x;
        EXPECT_LE(e.mean_gap, 1.25) << "n=" << n << " x=" << x;
      }
    }
  }
}

}  // namespace
}  // namespace streamcast::metrics
