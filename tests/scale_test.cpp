// Million-node scale subsystem tests (DESIGN.md §11): GK sketch accuracy
// against exact ranks, budget fail-fast, the structured placement inverse,
// the scale recorder stack's byte-identity with the exact stack, and the
// closed-form replay's byte-identity with the per-slot pump.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/session.hpp"
#include "src/multitree/structured.hpp"
#include "src/scale/recorder.hpp"
#include "src/scale/replay.hpp"
#include "src/scale/sketch.hpp"
#include "src/util/budget.hpp"

namespace streamcast {
namespace {

using core::QosReport;
using core::Scheme;
using core::SessionConfig;
using core::StreamingSession;
using sim::NodeKey;

// --- GK sketch -------------------------------------------------------------

/// Deterministic 64-bit mix (splitmix64 step) — pseudo-random-looking input
/// without <random>, which the determinism lint bans.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Asserts quantile(q) is within epsilon*n ranks of the target for every q
/// in a probe set: the returned value's rank interval [lo+1, hi] (ties
/// included) must intersect [r - eps*n, r + eps*n].
void check_ranks(scale::GkSketch& sketch, std::vector<std::int64_t> data,
                 double epsilon) {
  std::sort(data.begin(), data.end());
  const auto n = static_cast<std::int64_t>(data.size());
  const auto tolerance =
      static_cast<std::int64_t>(epsilon * static_cast<double>(n));
  for (const double q : {0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    const std::int64_t v = sketch.quantile(q);
    std::int64_t r = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(n)));
    r = std::clamp<std::int64_t>(r, 1, n);
    const auto lo = std::lower_bound(data.begin(), data.end(), v) -
                    data.begin();  // elements < v
    const auto hi = std::upper_bound(data.begin(), data.end(), v) -
                    data.begin();  // elements <= v
    EXPECT_LE(lo + 1, r + tolerance) << "q=" << q << " v=" << v;
    EXPECT_GE(hi, r - tolerance) << "q=" << q << " v=" << v;
  }
}

TEST(GkSketch, RankAccuracyAcrossDistributions) {
  constexpr std::int64_t kN = 10'000;
  for (const double epsilon : {0.05, 0.01, 0.005}) {
    std::vector<std::int64_t> ascending;
    std::vector<std::int64_t> descending;
    std::vector<std::int64_t> shuffled;
    std::vector<std::int64_t> heavy;
    for (std::int64_t i = 0; i < kN; ++i) {
      ascending.push_back(i);
      descending.push_back(kN - i);
      shuffled.push_back(static_cast<std::int64_t>(mix(
          static_cast<std::uint64_t>(i)) % 1000));
      // Mostly-constant with a sparse heavy tail: the shape of playback
      // delays in a structured forest.
      heavy.push_back(i % 97 == 0 ? 1000 + i : 7);
    }
    for (auto* data : {&ascending, &descending, &shuffled, &heavy}) {
      scale::GkSketch sketch(epsilon);
      for (const std::int64_t v : *data) sketch.add(v);
      ASSERT_EQ(sketch.count(), kN);
      check_ranks(sketch, *data, epsilon);
    }
  }
}

TEST(GkSketch, MinMaxAreExact) {
  scale::GkSketch sketch(0.01);
  std::vector<std::int64_t> data;
  for (std::int64_t i = 0; i < 5'000; ++i) {
    data.push_back(static_cast<std::int64_t>(mix(
        static_cast<std::uint64_t>(i)) % 100'000) - 50'000);
    sketch.add(data.back());
  }
  std::sort(data.begin(), data.end());
  EXPECT_EQ(sketch.quantile(0.0), data.front());
  EXPECT_EQ(sketch.quantile(1.0), data.back());
}

TEST(GkSketch, SummaryStaysSublinear) {
  scale::GkSketch sketch(0.01);
  for (std::int64_t i = 0; i < 100'000; ++i) {
    sketch.add(static_cast<std::int64_t>(mix(static_cast<std::uint64_t>(i))));
  }
  (void)sketch.quantile(0.5);  // flush
  // O((1/eps) * log(eps * n)) ~ a few hundred tuples; 100k inserts must not
  // degenerate toward linear storage.
  EXPECT_LT(sketch.summary_size(), 2'000u);
}

TEST(DistributionSketch, MomentsMatchExactArithmetic) {
  scale::DistributionSketch sketch(0.01);
  std::int64_t mn = std::numeric_limits<std::int64_t>::max();
  std::int64_t mx = std::numeric_limits<std::int64_t>::min();
  double sum = 0;
  constexpr std::int64_t kN = 10'000;
  for (std::int64_t i = 0; i < kN; ++i) {
    const auto v = static_cast<std::int64_t>(
        mix(static_cast<std::uint64_t>(i)) % 1'000'000);
    sketch.add(v);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += static_cast<double>(v);  // same feed order => identical double sum
  }
  const scale::QuantileSummary s = sketch.summarize();
  EXPECT_EQ(s.count, kN);
  EXPECT_EQ(s.min, mn);
  EXPECT_EQ(s.max, mx);
  EXPECT_EQ(s.mean, sum / static_cast<double>(kN));
}

// --- memory budget ---------------------------------------------------------

TEST(Budget, ChargesAndReleases) {
  util::BudgetLedger ledger(util::MemoryBudget{1000});
  ledger.charge("a", 600);
  EXPECT_EQ(ledger.used(), 600u);
  ledger.release(200);
  ledger.charge("b", 500);
  EXPECT_EQ(ledger.used(), 900u);
  EXPECT_EQ(ledger.peak(), 900u);
}

TEST(Budget, FailsFastWithComponent) {
  util::BudgetLedger ledger(util::MemoryBudget{1000});
  ledger.charge("warm-up", 800);
  try {
    ledger.charge("scale/delay-recorder", 300);
    FAIL() << "expected BudgetExceeded";
  } catch (const util::BudgetExceeded& e) {
    EXPECT_EQ(e.component(), "scale/delay-recorder");
    EXPECT_EQ(e.requested(), 300u);
    EXPECT_EQ(e.used(), 800u);
    EXPECT_EQ(e.limit(), 1000u);
    EXPECT_NE(std::string(e.what()).find("scale/delay-recorder"),
              std::string::npos);
  }
  // The failed charge must not be recorded.
  EXPECT_EQ(ledger.used(), 800u);
}

TEST(Budget, SessionFailsFastNeverOoms) {
  // A budget far below the recorder footprint: the session must throw
  // BudgetExceeded from allocation accounting, not OOM.
  SessionConfig cfg{.scheme = Scheme::kMultiTreeStructured, .n = 511, .d = 3};
  cfg.scale.budget_bytes = 10'000;
  cfg.scale.allow_replay = false;
  EXPECT_THROW((void)StreamingSession(cfg).run(), util::BudgetExceeded);
  // Same budget, scale stack: the flat recorders are ~2.4x smaller but
  // still far over 10 kB.
  cfg.scale.sketch_threshold = 1;
  EXPECT_THROW((void)StreamingSession(cfg).run(), util::BudgetExceeded);
}

// --- scale recorders -------------------------------------------------------

TEST(ScaleNeighborRecorder, SaturationIsAnErrorNotATruncation) {
  util::BudgetLedger ledger(util::MemoryBudget{1 << 20});
  scale::ScaleNeighborRecorder rec(4, 2, &ledger);
  const auto deliver = [&](NodeKey from, NodeKey to) {
    rec.on_delivery(sim::Delivery{
        .sent = 0, .received = 0, .tx = {.from = from, .to = to, .packet = 0}});
  };
  deliver(0, 1);
  deliver(2, 1);
  EXPECT_EQ(rec.count(1), 2u);
  deliver(3, 1);  // over the cap of 2
  EXPECT_THROW((void)rec.count(1), std::logic_error);
  // Other nodes stay queryable.
  EXPECT_EQ(rec.count(2), 1u);
}

// --- structured placement inverse ------------------------------------------

TEST(StructuredNodeAt, InvertsStructuredPositionEverywhere) {
  for (const NodeKey n : {1, 2, 3, 5, 7, 12, 16, 27, 40, 63, 100, 121}) {
    for (const int d : {1, 2, 3, 4, 5}) {
      const multitree::Forest forest = multitree::build_structured(n, d);
      for (int k = 0; k < d; ++k) {
        for (NodeKey pos = 1; pos <= forest.n_pad(); ++pos) {
          const NodeKey x = forest.node_at(k, pos);
          ASSERT_EQ(multitree::structured_node_at(n, d, k, pos), x)
              << "n=" << n << " d=" << d << " k=" << k << " pos=" << pos;
          ASSERT_EQ(multitree::structured_position(n, d, k, x), pos);
        }
      }
    }
  }
}

// --- scale stack vs exact stack --------------------------------------------

QosReport run_with(SessionConfig cfg, bool scale_stack) {
  cfg.scale.allow_replay = false;
  cfg.scale.sketch_threshold = scale_stack ? 1 : 0;
  return StreamingSession(cfg).run();
}

TEST(ScaleStack, ByteIdenticalToExactStackAcrossSchemes) {
  const SessionConfig grid[] = {
      {.scheme = Scheme::kMultiTreeStructured, .n = 40, .d = 3},
      {.scheme = Scheme::kMultiTreeStructured,
       .n = 63,
       .d = 2,
       .mode = multitree::StreamMode::kLivePrebuffered},
      {.scheme = Scheme::kMultiTreeGreedy, .n = 50, .d = 3},
      {.scheme = Scheme::kHypercube, .n = 31, .d = 1},
      {.scheme = Scheme::kChain, .n = 24, .d = 1},
      {.scheme = Scheme::kSingleTree, .n = 40, .d = 2},
  };
  for (const SessionConfig& cfg : grid) {
    const std::string exact = core::serialize(run_with(cfg, false));
    const std::string scaled = core::serialize(run_with(cfg, true));
    EXPECT_EQ(exact, scaled)
        << core::scheme_name(cfg.scheme) << " n=" << cfg.n << " d=" << cfg.d;
  }
}

// --- closed-form replay ----------------------------------------------------

QosReport run_replayed(SessionConfig cfg) {
  cfg.scale.replay_threshold = 1;  // always replay
  EXPECT_TRUE(StreamingSession::replay_eligible(cfg));
  return StreamingSession(cfg).run();
}

TEST(Replay, ByteIdenticalToPumpAcrossGrid) {
  for (const NodeKey n : {1, 2, 3, 4, 7, 9, 13, 24, 40, 63, 100, 121, 365}) {
    for (const int d : {1, 2, 3, 4, 5}) {
      for (const auto mode : {multitree::StreamMode::kPreRecorded,
                              multitree::StreamMode::kLivePrebuffered}) {
        SessionConfig cfg{
            .scheme = Scheme::kMultiTreeStructured, .n = n, .d = d,
            .mode = mode};
        const std::string pump =
            core::serialize(run_with(cfg, /*scale_stack=*/false));
        const std::string replay = core::serialize(run_replayed(cfg));
        ASSERT_EQ(pump, replay)
            << "n=" << n << " d=" << d << " mode="
            << (mode == multitree::StreamMode::kPreRecorded ? "pre" : "live");
      }
    }
  }
}

TEST(Replay, HonorsExplicitWindow) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeStructured, .n = 40, .d = 3};
  cfg.window = 30;
  EXPECT_EQ(core::serialize(run_with(cfg, false)),
            core::serialize(run_replayed(cfg)));
}

TEST(Replay, EligibilityGates) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeStructured, .n = 100, .d = 3};
  EXPECT_TRUE(StreamingSession::replay_eligible(cfg));

  SessionConfig greedy = cfg;
  greedy.scheme = Scheme::kMultiTreeGreedy;
  EXPECT_FALSE(StreamingSession::replay_eligible(greedy));

  SessionConfig pipelined = cfg;
  pipelined.mode = multitree::StreamMode::kLivePipelined;
  EXPECT_FALSE(StreamingSession::replay_eligible(pipelined));

  SessionConfig audited = cfg;
  audited.audit = true;
  EXPECT_FALSE(StreamingSession::replay_eligible(audited));

  SessionConfig lossy = cfg;
  lossy.loss.model = loss::ErasureKind::kBernoulli;
  lossy.loss.rate = 0.01;
  EXPECT_FALSE(StreamingSession::replay_eligible(lossy));

  SessionConfig narrow = cfg;
  narrow.window = 2;  // < d: not every residue is measured
  EXPECT_FALSE(StreamingSession::replay_eligible(narrow));

  SessionConfig disabled = cfg;
  disabled.scale.allow_replay = false;
  EXPECT_FALSE(StreamingSession::replay_eligible(disabled));
}

TEST(Replay, SummaryMatchesSimulatedSummary) {
  // The replay feeds the sketches per receiver 1..n — the same values in
  // the same order as pipeline aggregation — so the summaries agree
  // exactly, not just within epsilon.
  for (const NodeKey n : {40, 121}) {
    SessionConfig cfg{.scheme = Scheme::kMultiTreeStructured, .n = n, .d = 3};
    SessionConfig sim_cfg = cfg;
    sim_cfg.scale.allow_replay = false;
    const core::ScaleRunResult simulated =
        StreamingSession(sim_cfg).run_scale();
    SessionConfig replay_cfg = cfg;
    replay_cfg.scale.replay_threshold = 1;
    const core::ScaleRunResult replayed =
        StreamingSession(replay_cfg).run_scale();

    EXPECT_FALSE(simulated.summary.replayed);
    EXPECT_TRUE(replayed.summary.replayed);
    EXPECT_EQ(core::serialize(simulated.qos), core::serialize(replayed.qos));
    const auto expect_equal = [](const scale::QuantileSummary& a,
                                 const scale::QuantileSummary& b) {
      EXPECT_EQ(a.count, b.count);
      EXPECT_EQ(a.min, b.min);
      EXPECT_EQ(a.max, b.max);
      EXPECT_EQ(a.mean, b.mean);
      EXPECT_EQ(a.p50, b.p50);
      EXPECT_EQ(a.p95, b.p95);
      EXPECT_EQ(a.p99, b.p99);
    };
    expect_equal(simulated.summary.delay, replayed.summary.delay);
    expect_equal(simulated.summary.buffer, replayed.summary.buffer);
  }
}

TEST(Replay, ThresholdRoutesAutomatically) {
  // Below the replay threshold run() pumps; at/above it run() replays.
  // Both must agree bytewise, so the routing is observable only through
  // the summary's replayed flag.
  SessionConfig cfg{.scheme = Scheme::kMultiTreeStructured, .n = 200, .d = 2};
  cfg.scale.replay_threshold = 100;
  cfg.scale.sketch_threshold = 0;
  const core::ScaleRunResult routed = StreamingSession(cfg).run_scale();
  EXPECT_TRUE(routed.summary.replayed);

  cfg.scale.replay_threshold = 1'000;
  const core::ScaleRunResult pumped = StreamingSession(cfg).run_scale();
  EXPECT_FALSE(pumped.summary.replayed);
  EXPECT_EQ(core::serialize(routed.qos), core::serialize(pumped.qos));
}

}  // namespace
}  // namespace streamcast
