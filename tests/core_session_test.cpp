// StreamingSession facade tests: every scheme runs end to end and the
// reports line up with the per-module closed forms and Table 1's shape.
#include <gtest/gtest.h>

#include "src/baseline/chain.hpp"
#include "src/baseline/single_tree.hpp"
#include "src/core/session.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/schedule.hpp"
#include "src/supertree/analysis.hpp"

namespace streamcast::core {
namespace {

QosReport run(Scheme scheme, NodeKey n, int d) {
  return StreamingSession(SessionConfig{.scheme = scheme, .n = n, .d = d})
      .run();
}

TEST(Session, MultiTreeGreedyMatchesClosedForm) {
  const auto r = run(Scheme::kMultiTreeGreedy, 100, 3);
  const auto f = multitree::build_greedy(100, 3);
  EXPECT_EQ(r.worst_delay, multitree::closed_form_worst_delay(f));
  EXPECT_NEAR(r.average_delay, multitree::closed_form_average_delay(f),
              1e-9);
  EXPECT_LE(r.max_buffer,
            static_cast<std::size_t>(multitree::worst_delay_bound(100, 3)));
  EXPECT_LE(r.max_neighbors, 6u);
}

TEST(Session, StructuredAndGreedyShareBounds) {
  const auto a = run(Scheme::kMultiTreeStructured, 63, 2);
  const auto b = run(Scheme::kMultiTreeGreedy, 63, 2);
  const sim::Slot bound = multitree::worst_delay_bound(63, 2);
  EXPECT_LE(a.worst_delay, bound);
  EXPECT_LE(b.worst_delay, bound);
}

TEST(Session, HypercubeMatchesAnalysis) {
  const auto r = run(Scheme::kHypercube, 127, 1);
  EXPECT_EQ(r.worst_delay, hypercube::measured_worst_delay(127));
  EXPECT_LE(r.max_buffer, 3u);
}

TEST(Session, HypercubeGroupedUsesSourceCapacity) {
  const auto r = run(Scheme::kHypercubeGrouped, 90, 3);
  EXPECT_EQ(r.worst_delay, hypercube::measured_worst_delay_grouped(90, 3));
}

TEST(Session, ChainIsLinear) {
  const auto r = run(Scheme::kChain, 50, 1);
  EXPECT_EQ(r.worst_delay, baseline::chain_worst_delay(50));
  EXPECT_LE(r.max_buffer, 1u);
  EXPECT_LE(r.max_neighbors, 2u);
}

TEST(Session, SingleTreeIsLogarithmic) {
  const auto r = run(Scheme::kSingleTree, 62, 2);
  EXPECT_EQ(r.worst_delay, baseline::single_tree_worst_delay(62, 2));
}

TEST(Session, TableOneShape) {
  // Table 1, realized for arbitrary N: multi-tree's O(d log N) worst-case
  // delay beats the hypercube chain's O(log^2 N); the hypercube wins on
  // buffer space (O(1) vs O(d log N)); multi-tree keeps O(d) neighbors
  // while the hypercube needs O(log N). (For special N = 2^k - 1 the cube
  // achieves O(log N) delay and can win — hence the non-special N here.)
  const NodeKey n = 500;
  const auto mt = run(Scheme::kMultiTreeGreedy, n, 2);
  const auto hc = run(Scheme::kHypercube, n, 1);
  EXPECT_LT(mt.worst_delay, hc.worst_delay);
  EXPECT_LT(hc.max_buffer, mt.max_buffer);
  EXPECT_LE(mt.max_neighbors, 4u);
  EXPECT_GE(hc.max_neighbors, 8u);  // the k=8 segment's cube degree

  // And at special N the cube's delay drops to exactly log2(N+1).
  const auto special = run(Scheme::kHypercube, 511, 1);
  EXPECT_EQ(special.worst_delay, 9);
  EXPECT_LT(special.worst_delay,
            run(Scheme::kMultiTreeGreedy, 511, 2).worst_delay);
}

TEST(Session, LiveModesShiftDelay) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeGreedy, .n = 40, .d = 2};
  const auto pre = StreamingSession(cfg).run();
  cfg.mode = multitree::StreamMode::kLivePrebuffered;
  const auto live = StreamingSession(cfg).run();
  EXPECT_EQ(live.worst_delay, pre.worst_delay + 2);
}

TEST(Session, ReportSummaryMentionsScheme) {
  const auto r = run(Scheme::kChain, 5, 1);
  EXPECT_NE(r.summary().find("chain"), std::string::npos);
  EXPECT_NE(r.summary().find("N=5"), std::string::npos);
}

TEST(Session, RejectsBadConfig) {
  EXPECT_THROW(StreamingSession(SessionConfig{.n = 0}), std::invalid_argument);
  EXPECT_THROW(
      StreamingSession(SessionConfig{.n = 5, .d = 0}),
      std::invalid_argument);
}

TEST(Session, MultiClusterMultiTree) {
  const auto r = StreamingSession(SessionConfig{
                     .scheme = Scheme::kMultiTreeGreedy,
                     .n = 20,
                     .d = 2,
                     .clusters = 9,
                     .big_d = 3,
                     .t_c = 8})
                     .run();
  EXPECT_EQ(r.n, 180);
  EXPECT_NE(r.scheme.find("x9 clusters"), std::string::npos);
  // Deepest cluster sits 2 backbone hops away: delay reflects 2*T_c.
  EXPECT_GE(r.worst_delay, 2 * 8);
  EXPECT_LE(r.worst_delay,
            supertree::structural_bound(9, 3, 8, 1, 2, 20));
}

TEST(Session, MultiClusterHypercube) {
  const auto r = StreamingSession(SessionConfig{.scheme = Scheme::kHypercube,
                                                .n = 7,
                                                .d = 1,
                                                .clusters = 4,
                                                .big_d = 3,
                                                .t_c = 10})
                     .run();
  EXPECT_EQ(r.n, 28);
  EXPECT_LE(r.max_buffer, 2u);
  EXPECT_LE(r.worst_delay,
            supertree::structural_bound_hypercube(4, 3, 10, 1, 7));
}

TEST(Session, MultiClusterRejectsBaselines) {
  EXPECT_THROW(StreamingSession(SessionConfig{.scheme = Scheme::kChain,
                                              .n = 5,
                                              .d = 1,
                                              .clusters = 2}),
               std::invalid_argument);
}

TEST(Session, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kMultiTreeStructured),
               "multi-tree/structured");
  EXPECT_STREQ(scheme_name(Scheme::kHypercubeGrouped), "hypercube/grouped");
}

}  // namespace
}  // namespace streamcast::core
