// Churn tests (paper appendix): invariants survive arbitrary add/delete
// sequences, common-case costs match the paper's accounting, and the lazy
// policy defers boundary restructuring.
#include <gtest/gtest.h>

#include <vector>

#include "src/multitree/churn.hpp"
#include "src/multitree/validate.hpp"
#include "src/util/prng.hpp"

namespace streamcast::multitree {
namespace {

TEST(ChurnForest, StartsWithDensePeers) {
  ChurnForest cf(10, 3);
  EXPECT_EQ(cf.n(), 10);
  for (NodeKey id = 1; id <= 10; ++id) {
    EXPECT_EQ(cf.peer_at(id), id);  // first peers get ids 1..N
  }
  EXPECT_TRUE(validate_forest(cf.forest()).ok);
}

TEST(ChurnForest, NonBoundaryAdditionMovesNoExistingPeer) {
  // N = 13, d = 3: I = ceil(13/3)-1 = 4; adding one node keeps I = 4
  // (ceil(14/3)-1 = 4), so no restructuring and no relabeling.
  ChurnForest cf(13, 3);
  const auto before = cf.stats();
  cf.add();
  EXPECT_EQ(cf.n(), 14);
  EXPECT_EQ(cf.stats().total_moves(), before.total_moves());
  EXPECT_EQ(cf.stats().rebuilds, 0);
}

TEST(ChurnForest, BoundaryAdditionRestructures) {
  // N = 15, d = 3: I = 4; adding one makes I = ceil(16/3)-1 = 5.
  ChurnForest cf(15, 3);
  cf.add();
  EXPECT_EQ(cf.n(), 16);
  EXPECT_EQ(cf.stats().rebuilds, 1);
  EXPECT_GT(cf.stats().rebuild_moves, 0);
  EXPECT_TRUE(validate_forest(cf.forest()).ok);
}

TEST(ChurnForest, DeletingLastAllLeafCostsNothing) {
  // Peer at id N is the "last all-leaf node in tree T_0": removing it needs
  // no replacement swap, and N = 14 -> 13 keeps I = 4 (d = 3).
  ChurnForest cf(14, 3);
  cf.remove(cf.peer_at(14));
  EXPECT_EQ(cf.n(), 13);
  EXPECT_EQ(cf.stats().total_moves(), 0);
}

TEST(ChurnForest, DeletingInteriorCostsOneRelabel) {
  // Paper Step 1: the departing interior node is replaced by the last
  // all-leaf node — exactly d per-tree position changes for one peer.
  ChurnForest cf(14, 3);
  const PeerId victim = cf.peer_at(2);  // id 2 is interior in T_0
  cf.remove(victim);
  EXPECT_EQ(cf.n(), 13);
  EXPECT_EQ(cf.stats().relabel_moves, 3);
  EXPECT_EQ(cf.stats().rebuild_moves, 0);
  // The old id-14 peer now answers at id 2.
  EXPECT_EQ(cf.peer_at(2), 14);
  EXPECT_EQ(cf.id_of(victim), -1);
}

TEST(ChurnForest, BoundaryDeletionRestructures) {
  // N = 13 -> 12 (d = 3): I drops from 4 to 3.
  ChurnForest cf(13, 3);
  cf.remove(cf.peer_at(13));
  EXPECT_EQ(cf.stats().rebuilds, 1);
  EXPECT_TRUE(validate_forest(cf.forest()).ok);
}

TEST(ChurnForest, RemoveUnknownPeerThrows) {
  ChurnForest cf(5, 2);
  EXPECT_THROW(cf.remove(999), std::invalid_argument);
}

TEST(ChurnForest, CannotEmptyTheSystem) {
  ChurnForest cf(1, 2);
  EXPECT_THROW(cf.remove(cf.peer_at(1)), std::logic_error);
}

TEST(ChurnForest, LazyDefersAlternatingBoundaryOps) {
  // Alternate add/remove across the N = 15/16 boundary (d = 3): eager
  // restructures twice per round trip, lazy not at all.
  ChurnForest eager(15, 3, ChurnPolicy::kEager);
  ChurnForest lazy(15, 3, ChurnPolicy::kLazy);
  for (int round = 0; round < 10; ++round) {
    const PeerId pe = eager.add();
    eager.remove(pe);
    const PeerId pl = lazy.add();
    lazy.remove(pl);
  }
  EXPECT_EQ(eager.stats().rebuilds, 20);
  EXPECT_EQ(lazy.stats().rebuilds, 1);  // only the very first forced grow
  EXPECT_LT(lazy.stats().total_moves(), eager.stats().total_moves());
}

TEST(ChurnForest, LazyShrinksBeforeVacanciesReachTheInteriorPool) {
  ChurnForest lazy(20, 3, ChurnPolicy::kLazy);
  for (int i = 0; i < 7; ++i) {
    lazy.remove(lazy.peer_at(lazy.n()));
    // Vacant ids must never reach the interior pool {1..dI}: at most d
    // vacancies at rest (a vacant interior id would starve its subtree in
    // a live stream).
    ASSERT_LE(lazy.forest().n_pad() - lazy.n(), 3);
    ASSERT_GT(lazy.n(), lazy.forest().n_pad() - 3 - 1);
  }
  EXPECT_EQ(lazy.n(), 13);
  EXPECT_GE(lazy.stats().rebuilds, 1);
  // Structure is canonical again: interior = ceil(13/3)-1 = 4.
  EXPECT_EQ(lazy.interior(), 4);
}

TEST(ChurnForest, LazySlackParameterDefersShrinks) {
  // With slack = 2d (experimental, unsafe for live streams) the forest
  // tolerates up to 2d vacancies before restructuring.
  // N = 21 = n_pad: no initial vacancies.
  ChurnForest wide(21, 3, ChurnPolicy::kLazy, /*lazy_slack=*/6);
  for (int i = 0; i < 6; ++i) {
    wide.remove(wide.peer_at(wide.n()));
    ASSERT_LE(wide.forest().n_pad() - wide.n(), 6);
  }
  EXPECT_EQ(wide.stats().rebuilds, 0);  // 6 vacancies = slack: no shrink yet
  wide.remove(wide.peer_at(wide.n()));
  EXPECT_EQ(wide.stats().rebuilds, 1);  // 7th forces it
  // Structure and invariants still hold throughout.
  EXPECT_TRUE(validate_forest(wide.forest()).ok);
}

TEST(ChurnForest, RandomSoakKeepsInvariants) {
  util::Prng rng(2026);
  for (const int d : {2, 3, 5}) {
    ChurnForest cf(30, static_cast<NodeKey>(d));
    std::vector<PeerId> alive;
    for (NodeKey id = 1; id <= 30; ++id) alive.push_back(cf.peer_at(id));
    for (int op = 0; op < 300; ++op) {
      if (cf.n() > 2 && rng.chance(0.5)) {
        const auto idx = static_cast<std::size_t>(
            rng.below(alive.size()));
        cf.remove(alive[idx]);
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(idx));
        // Relabeling may have reseated the peer formerly at id n; refresh.
        alive.clear();
        for (NodeKey id = 1; id <= cf.n(); ++id) {
          alive.push_back(cf.peer_at(id));
        }
      } else {
        alive.push_back(cf.add());
      }
      ASSERT_TRUE(validate_forest(cf.forest()).ok)
          << "d=" << d << " op=" << op;
      ASSERT_TRUE(validate_greedy_parity(cf.forest()).ok);
      // Peers are dense in 1..n and ids above n are vacant.
      for (NodeKey id = 1; id <= cf.n(); ++id) {
        ASSERT_NE(cf.peer_at(id), kNoPeer);
      }
      for (NodeKey id = cf.n() + 1; id <= cf.forest().n_pad(); ++id) {
        ASSERT_EQ(cf.peer_at(id), kNoPeer);
      }
    }
  }
}

TEST(ChurnForest, LazyRandomSoakKeepsInvariants) {
  util::Prng rng(77);
  ChurnForest cf(25, 3, ChurnPolicy::kLazy);
  std::vector<PeerId> alive;
  for (NodeKey id = 1; id <= 25; ++id) alive.push_back(cf.peer_at(id));
  for (int op = 0; op < 400; ++op) {
    if (cf.n() > 2 && rng.chance(0.6)) {
      const auto idx = static_cast<std::size_t>(rng.below(alive.size()));
      cf.remove(alive[idx]);
      alive.clear();
      for (NodeKey id = 1; id <= cf.n(); ++id) alive.push_back(cf.peer_at(id));
    } else {
      alive.push_back(cf.add());
    }
    ASSERT_TRUE(validate_forest(cf.forest()).ok) << "op=" << op;
    // Lazy invariant: at most d vacancies at rest, so vacant ids are
    // always all-leaf tail ids.
    ASSERT_LE(cf.forest().n_pad() - cf.n(), 3);
  }
}

}  // namespace
}  // namespace streamcast::multitree
