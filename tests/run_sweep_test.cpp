// Parallel sweep runner tests: byte-identical reports at every thread
// count across all six schemes (lossy runs included, each task owning its
// seeded PRNG), deterministic error surfacing, work distribution, and the
// STREAMCAST_THREADS override.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/streamcast.hpp"
#include "src/run/sweep.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;

/// The cross-scheme grid every thread count must reproduce byte-for-byte.
std::vector<SessionConfig> cross_scheme_grid() {
  std::vector<SessionConfig> tasks;
  for (const Scheme scheme :
       {Scheme::kMultiTreeStructured, Scheme::kMultiTreeGreedy}) {
    for (const sim::NodeKey n : {14, 40}) {
      for (const int d : {2, 3}) {
        tasks.push_back({.scheme = scheme, .n = n, .d = d});
      }
    }
  }
  for (const sim::NodeKey n : {7, 25}) {
    tasks.push_back({.scheme = Scheme::kHypercube, .n = n, .d = 1});
  }
  tasks.push_back({.scheme = Scheme::kHypercubeGrouped, .n = 24, .d = 2});
  tasks.push_back({.scheme = Scheme::kChain, .n = 20, .d = 1});
  tasks.push_back({.scheme = Scheme::kSingleTree, .n = 20, .d = 2});
  tasks.push_back({.scheme = Scheme::kMultiTreeGreedy,
                   .n = 30,
                   .d = 2,
                   .mode = multitree::StreamMode::kLivePipelined});
  // Lossy tasks: the erasure PRNG is seeded per task inside the session, so
  // no RNG state crosses task (or thread) boundaries.
  for (const double rate : {0.02, 0.1}) {
    SessionConfig lossy{.scheme = Scheme::kMultiTreeGreedy, .n = 25, .d = 2};
    lossy.loss.model = loss::ErasureKind::kBernoulli;
    lossy.loss.rate = rate;
    lossy.loss.seed = 0xabcd;
    tasks.push_back(lossy);
  }
  {
    SessionConfig ge{.scheme = Scheme::kChain, .n = 15, .d = 1};
    ge.loss.model = loss::ErasureKind::kGilbertElliott;
    ge.loss.seed = 7;
    tasks.push_back(ge);
  }
  return tasks;
}

/// Full textual rendering of a sweep outcome; equality here is the
/// byte-identical guarantee the runner promises.
std::string render(const std::vector<run::TaskResult>& results) {
  std::ostringstream os;
  for (const run::TaskResult& r : results) {
    if (r.error) {
      try {
        std::rethrow_exception(r.error);
      } catch (const std::exception& e) {
        os << "error: " << e.what() << "\n";
      }
      continue;
    }
    os << r.qos.summary() << " slots=" << r.qos.slots_simulated
       << " avgbuf=" << r.qos.average_buffer
       << " avgnb=" << r.qos.average_neighbors << " drops=" << r.loss.drops
       << " retx=" << r.loss.retransmissions
       << " parity=" << r.loss.parity_transmissions
       << " fec=" << r.loss.fec_decodes << " nacks=" << r.loss.nacks
       << " gapfree=" << r.loss.all_gap_free << " stalls=" << r.loss.stalls
       << " undecodable=" << r.loss.undecodable
       << " drain=" << r.loss.drain_slots << "\n";
  }
  return os.str();
}

TEST(RunSweep, ByteIdenticalReportsAcrossThreadCounts) {
  const auto tasks = cross_scheme_grid();
  const auto serial = run::run_sweep(tasks, {.threads = 1});
  run::require_all(serial);
  const std::string expected = render(serial);
  for (const int threads : {2, 8}) {
    const auto parallel = run::run_sweep(tasks, {.threads = threads});
    EXPECT_EQ(expected, render(parallel)) << threads << " threads";
  }
}

TEST(RunSweep, MatchesDirectSessionRun) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeGreedy, .n = 40, .d = 3};
  const auto direct = core::StreamingSession(cfg).run();
  const auto swept = run::run_sweep({cfg}, {.threads = 4});
  ASSERT_EQ(swept.size(), 1u);
  ASSERT_FALSE(swept[0].error);
  EXPECT_EQ(direct.summary(), swept[0].qos.summary());
  EXPECT_EQ(direct.slots_simulated, swept[0].qos.slots_simulated);
}

TEST(RunSweep, ErrorsAreCapturedPerTaskAndRethrownInOrder) {
  std::vector<SessionConfig> tasks = {
      {.scheme = Scheme::kChain, .n = 5, .d = 1},
      {.scheme = Scheme::kChain, .n = 0, .d = 1},  // n < 1: invalid
      {.scheme = Scheme::kChain, .n = 6, .d = 1},
  };
  const auto results = run::run_sweep(tasks, {.threads = 4});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].error);
  EXPECT_TRUE(results[1].error);
  EXPECT_FALSE(results[2].error);
  EXPECT_GT(results[2].qos.transmissions, 0);
  EXPECT_THROW(run::require_all(results), std::invalid_argument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  run::parallel_for(
      kCount, [&hits](std::size_t i) { hits[i].fetch_add(1); },
      {.threads = 8});
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, RethrowsLowestIndexError) {
  EXPECT_THROW(
      run::parallel_for(
          16,
          [](std::size_t i) {
            if (i % 2 == 1) throw std::runtime_error("odd");
          },
          {.threads = 4}),
      std::runtime_error);
}

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(run::resolve_threads(3), 3);
  EXPECT_EQ(run::resolve_threads(1), 1);
}

TEST(ResolveThreads, EnvironmentOverrideApplies) {
  ASSERT_EQ(setenv("STREAMCAST_THREADS", "5", 1), 0);
  EXPECT_EQ(run::resolve_threads(0), 5);
  ASSERT_EQ(setenv("STREAMCAST_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(run::resolve_threads(0), 1);  // falls back to hardware
  ASSERT_EQ(unsetenv("STREAMCAST_THREADS"), 0);
  EXPECT_GE(run::resolve_threads(0), 1);
}

}  // namespace
}  // namespace streamcast
