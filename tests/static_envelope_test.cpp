// The constexpr envelope kit (src/static) against the runtime modules it
// was factored out of: every formula must agree EXACTLY with the
// implementation that used to own it, over a grid wider than the
// static_assert grid in src/static/proofs.cpp. This is the soundness link
// of the compile-time proofs — proofs.cpp asserts properties of the
// constexpr arithmetic; this test pins that arithmetic to the schedules
// and structures the simulator actually runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/baseline/chain.hpp"
#include "src/baseline/single_tree.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/hypercube/arbitrary.hpp"
#include "src/hypercube/grouped.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/structured.hpp"
#include "src/rrd/digraph.hpp"
#include "src/static/envelopes.hpp"
#include "src/static/lattice.hpp"
#include "src/supertree/backbone.hpp"

namespace streamcast {
namespace {

TEST(StaticEnvelope, TreeHeightMatchesRuntime) {
  for (int d = 1; d <= 5; ++d) {
    for (int n = 1; n <= 300; ++n) {
      EXPECT_EQ(envelope::tree_height(n, d), multitree::tree_height(n, d))
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(StaticEnvelope, StructuredDelayMatchesScheduleClosedForm) {
  for (int d = 1; d <= 4; ++d) {
    for (int n = 1; n <= 120; ++n) {
      const auto forest = multitree::build_structured(n, d);
      EXPECT_EQ(envelope::structured_worst_delay(n, d),
                multitree::closed_form_worst_delay(forest))
          << "n=" << n << " d=" << d;
      // Pipelined live mode, per receiver.
      const auto pipelined = multitree::closed_form_delays_pipelined(forest);
      const envelope::Lattice lat(n, d);
      sim::Slot worst = 0;
      for (int x = 1; x <= n; ++x) {
        const auto a = static_cast<sim::Slot>(
            envelope::structured_delay_pipelined(lat, x));
        EXPECT_EQ(a, pipelined[static_cast<std::size_t>(x)])
            << "n=" << n << " d=" << d << " x=" << x;
        worst = std::max(worst, a);
      }
      EXPECT_EQ(worst, static_cast<sim::Slot>(
                           envelope::structured_worst_delay_pipelined(n, d)));
    }
  }
}

TEST(StaticEnvelope, LatticeMatchesStructuredForest) {
  for (int d = 1; d <= 4; ++d) {
    for (int n = 1; n <= 80; ++n) {
      const envelope::Lattice lat(n, d);
      for (int k = 0; k < d; ++k) {
        for (int x = 1; x <= lat.n_pad; ++x) {
          EXPECT_EQ(lat.position_of(k, x),
                    multitree::structured_position(n, d, k, x));
          EXPECT_EQ(lat.node_at(k, lat.position_of(k, x)), x);
        }
      }
    }
  }
}

TEST(StaticEnvelope, HypercubeMatchesDecomposition) {
  for (int n = 1; n <= 3000; ++n) {
    const auto chain = hypercube::decompose_chain(n);
    EXPECT_EQ(envelope::hypercube_delay_bound(n),
              chain.back().playback_delay())
        << "n=" << n;
    EXPECT_EQ(envelope::hypercube_segments(n),
              static_cast<int>(chain.size()))
        << "n=" << n;
  }
  for (int d = 1; d <= 6; ++d) {
    for (int n = 1; n <= 300; ++n) {
      sim::Slot worst = 0;
      for (const auto& g : hypercube::decompose_grouped(n, d)) {
        worst = std::max(worst, g.chain.back().playback_delay());
      }
      EXPECT_EQ(envelope::hypercube_grouped_delay_bound(n, d), worst)
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(StaticEnvelope, BaselinesMatchRuntime) {
  for (int d = 1; d <= 5; ++d) {
    for (int n = 1; n <= 300; ++n) {
      EXPECT_EQ(envelope::single_tree_depth(n, d),
                baseline::single_tree_depth(n, d));
      EXPECT_EQ(envelope::single_tree_delay_bound(n, d),
                baseline::single_tree_worst_delay(n, d));
      EXPECT_EQ(envelope::chain_delay_bound(n),
                baseline::chain_worst_delay(n));
    }
  }
}

TEST(StaticEnvelope, BackboneDepthMatchesBuiltBackbone) {
  for (int big_d = 3; big_d <= 6; ++big_d) {  // build_backbone needs D >= 3
    for (int k = 1; k <= 200; ++k) {
      EXPECT_EQ(envelope::backbone_depth(k, big_d),
                supertree::build_backbone(k, big_d).max_depth())
          << "k=" << k << " D=" << big_d;
    }
  }
}

TEST(StaticEnvelope, RrdBoundMatchesRuntime) {
  for (int d = 2; d <= 5; ++d) {
    for (int n = 2; n <= 600; ++n) {
      EXPECT_EQ(envelope::rrd_delay_bound(n, d), rrd::delay_bound(n, d));
    }
  }
}

}  // namespace
}  // namespace streamcast
