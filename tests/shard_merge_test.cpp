// Golden-parity suite for the sharded multicluster runner (DESIGN.md §14):
// the merged QosReport, trace, audit verdicts, and semantic engine totals at
// every shard count must equal the shards == 1 run byte-for-byte, across
// shard counts that divide the cluster count, exceed it, and straddle it
// (K < S and K not divisible by S), for audited, lossy, and live-pipelined
// cells. Also runs under the tsan preset: the epoch barrier, the mailbox
// exchange, and the per-shard arenas must be clean under
// ThreadSanitizer, not just correct.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/report.hpp"
#include "src/core/session.hpp"
#include "src/core/shard.hpp"
#include "src/multitree/forest.hpp"
#include "src/multitree/greedy.hpp"
#include "src/sim/erasure.hpp"
#include "src/sim/trace.hpp"

namespace streamcast {
namespace {

using core::QosReport;
using core::SessionConfig;
using core::ShardMetrics;
using core::ShardOptions;
using sim::NodeKey;
using sim::Slot;
using sim::Tx;

constexpr int kShardCounts[] = {1, 2, 3, 8};
constexpr int kClusterCounts[] = {1, 2, 5, 7};

SessionConfig base_config(int clusters) {
  SessionConfig config;
  config.scheme = core::Scheme::kMultiTreeGreedy;
  config.n = 12;
  config.d = 2;
  config.clusters = clusters;
  config.big_d = 3;
  config.t_c = 4;
  config.audit = false;  // per-cell choice; the audit preset default would
                         // wrongly audit the lossy and live cells
  return config;
}

/// Deterministic erasure oracle that only drops deliveries to plain
/// receivers that are *leaves* in the delivering tree — the one edge class
/// the multi-tree protocol tolerates losing (interior relays and backbone
/// hops carry in-order asserts). Decisions are a pure function of (t, tx),
/// so any partition of senders across shards reproduces the serial stream
/// by construction (the shardability precondition, DESIGN.md §14).
class LeafOnlyLoss final : public sim::ErasureOracle {
 public:
  LeafOnlyLoss(NodeKey n, int d)
      : n_(n), forest_(multitree::build_greedy(n, d)) {}

  bool erased(Slot t, const Tx& tx) override {
    if (tx.to <= 0 || tx.tag < 0) return false;
    // ClusteredTopology layout: key 0 = S, then per cluster S_i, S'_i and n
    // receivers — so within a cluster block, offsets 0 and 1 are relays.
    const NodeKey offset = (tx.to - 1) % (n_ + 2);
    if (offset < 2) return false;
    const NodeKey local = offset - 1;
    if (forest_.interior_tree_of(local) == tx.tag) return false;
    return (t + 7 * tx.to + 3 * tx.packet) % 5 == 0;
  }

 private:
  NodeKey n_;
  multitree::Forest forest_;
};

struct Cell {
  const char* name;
  bool audit = false;
  bool lossy = false;
  multitree::StreamMode mode = multitree::StreamMode::kPreRecorded;
};

constexpr Cell kCells[] = {
    {.name = "audited", .audit = true},
    {.name = "lossy", .lossy = true},
    {.name = "live-pipelined",
     .mode = multitree::StreamMode::kLivePipelined},
};

ShardOptions cell_options(const Cell& cell, const SessionConfig& config,
                          int shards, sim::Trace* trace = nullptr) {
  ShardOptions opts;
  opts.shards = shards;
  opts.mode = cell.mode;
  opts.skip_incomplete = !cell.audit;
  opts.trace = trace;
  if (cell.lossy) {
    const NodeKey n = config.n;
    const int d = config.d;
    opts.make_loss = [n, d](int) {
      return std::make_unique<LeafOnlyLoss>(n, d);
    };
  }
  return opts;
}

ShardOptions shard_opts(int shards) {
  ShardOptions opts;
  opts.shards = shards;
  return opts;
}

std::string describe(const Cell& cell, int clusters, int shards) {
  std::ostringstream os;
  os << cell.name << " K=" << clusters << " shards=" << shards;
  return os.str();
}

std::string trace_text(const sim::Trace& trace) {
  std::ostringstream os;
  for (const sim::Delivery& d : trace.all()) {
    os << d.sent << ' ' << d.received << ' ' << d.tx.from << ' ' << d.tx.to
       << ' ' << d.tx.packet << ' ' << d.tx.tag << '\n';
  }
  for (const sim::Drop& d : trace.drops()) {
    os << "drop " << d.sent << ' ' << d.would_arrive << ' ' << d.tx.from
       << ' ' << d.tx.to << ' ' << d.tx.packet << ' ' << d.tx.tag << '\n';
  }
  return os.str();
}

TEST(ShardMerge, ByteIdenticalAcrossShardCounts) {
  for (const Cell& cell : kCells) {
    for (const int clusters : kClusterCounts) {
      SessionConfig config = base_config(clusters);
      config.audit = cell.audit;

      NodeKey baseline_incomplete = 0;
      ShardMetrics baseline_metrics;
      const QosReport baseline = run_multicluster_sharded(
          config, cell_options(cell, config, 1), &baseline_metrics,
          &baseline_incomplete);
      const std::string golden = core::serialize(baseline);

      for (const int shards : kShardCounts) {
        if (shards == 1) continue;
        NodeKey incomplete = 0;
        ShardMetrics metrics;
        const QosReport report = run_multicluster_sharded(
            config, cell_options(cell, config, shards), &metrics,
            &incomplete);
        const std::string label = describe(cell, clusters, shards);
        EXPECT_EQ(core::serialize(report), golden) << label;
        EXPECT_EQ(incomplete, baseline_incomplete) << label;
        // Semantic engine totals merge to the serial figures; allocation
        // counters legitimately differ (one arena/ring per shard).
        EXPECT_EQ(metrics.stats.transmissions,
                  baseline_metrics.stats.transmissions)
            << label;
        EXPECT_EQ(metrics.stats.deliveries, baseline_metrics.stats.deliveries)
            << label;
        EXPECT_EQ(metrics.stats.drops, baseline_metrics.stats.drops) << label;
        EXPECT_EQ(metrics.stats.duplicate_deliveries,
                  baseline_metrics.stats.duplicate_deliveries)
            << label;
        EXPECT_EQ(metrics.shards, std::min(shards, clusters)) << label;
      }
    }
  }
}

TEST(ShardMerge, TraceMergesCanonically) {
  for (const Cell& cell : kCells) {
    SessionConfig config = base_config(5);
    config.audit = cell.audit;

    sim::Trace serial_trace;
    ShardMetrics serial_metrics;
    run_multicluster_sharded(config, cell_options(cell, config, 1,
                                                  &serial_trace),
                             &serial_metrics);
    const std::string golden = trace_text(serial_trace);
    ASSERT_FALSE(serial_trace.all().empty());
    EXPECT_EQ(static_cast<std::int64_t>(serial_trace.all().size()),
              serial_metrics.stats.deliveries)
        << cell.name;

    for (const int shards : {2, 3, 8}) {
      sim::Trace trace;
      run_multicluster_sharded(config,
                               cell_options(cell, config, shards, &trace));
      EXPECT_EQ(trace_text(trace), golden)
          << describe(cell, 5, shards);
    }
  }
}

TEST(ShardMerge, SessionPathDelegatesToShardedRunner) {
  SessionConfig config = base_config(5);
  config.audit = true;
  const std::string golden =
      core::serialize(core::StreamingSession(config).run());
  for (const int shards : {2, 3, 8}) {
    config.shards = shards;
    EXPECT_EQ(core::serialize(core::StreamingSession(config).run()), golden)
        << "shards=" << shards;
  }
}

TEST(ShardMerge, HypercubeIntraShardsIdentically) {
  SessionConfig config = base_config(5);
  config.scheme = core::Scheme::kHypercube;
  config.audit = true;
  const std::string golden =
      core::serialize(run_multicluster_sharded(config, shard_opts(1)));
  for (const int shards : {2, 3, 8}) {
    EXPECT_EQ(core::serialize(
                  run_multicluster_sharded(config, shard_opts(shards))),
              golden)
        << "shards=" << shards;
  }
}

TEST(ShardMerge, ArenaCountersSurfaceInMergedStats) {
  SessionConfig config = base_config(5);
  ShardMetrics metrics;
  run_multicluster_sharded(config, shard_opts(3), &metrics);
  EXPECT_EQ(metrics.shards, 3);
  EXPECT_GT(metrics.stats.arena_allocations, 0);
  EXPECT_GT(metrics.stats.arena_bytes, 0);
  EXPECT_GT(metrics.stats.arena_chunks, 0);
  EXPECT_GT(metrics.pump_s, 0.0);
  EXPECT_GE(metrics.construct_s, 0.0);
  EXPECT_GE(metrics.merge_s, 0.0);
}

TEST(ShardMerge, RejectsInvalidSessionShardCount) {
  SessionConfig config = base_config(2);
  config.shards = 0;
  EXPECT_THROW(core::StreamingSession{config}, std::invalid_argument);
}

}  // namespace
}  // namespace streamcast
