#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "src/util/arena.hpp"
#include "src/util/ascii_tree.hpp"
#include "src/util/budget.hpp"
#include "src/util/ints.hpp"
#include "src/util/prng.hpp"
#include "src/util/table.hpp"

namespace streamcast::util {
namespace {

TEST(Ints, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(15, 3), 5);
  EXPECT_EQ(ceil_div(16, 3), 6);
}

TEST(Ints, Logs) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Ints, CeilLogGeneral) {
  EXPECT_EQ(ceil_log(3, 1), 0);
  EXPECT_EQ(ceil_log(3, 3), 1);
  EXPECT_EQ(ceil_log(3, 4), 2);
  EXPECT_EQ(ceil_log(3, 9), 2);
  EXPECT_EQ(ceil_log(3, 10), 3);
  EXPECT_EQ(ceil_log(2, 1024), 10);
}

TEST(Ints, ModFloor) {
  EXPECT_EQ(mod_floor(5, 3), 2);
  EXPECT_EQ(mod_floor(-1, 3), 2);
  EXPECT_EQ(mod_floor(-3, 3), 0);
  EXPECT_EQ(mod_floor(0, 7), 0);
}

TEST(Ints, CompleteDarySize) {
  EXPECT_EQ(complete_dary_size(2, 0), 0);
  EXPECT_EQ(complete_dary_size(2, 1), 2);
  EXPECT_EQ(complete_dary_size(2, 3), 14);
  EXPECT_EQ(complete_dary_size(3, 2), 12);
  EXPECT_EQ(complete_dary_size(3, 3), 39);
}

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, BelowStaysInRange) {
  Prng g(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(g.below(17), 17u);
  }
}

TEST(Prng, RangeInclusiveCoversEndpoints) {
  Prng g(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.range(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(Prng, UniformInUnitInterval) {
  Prng g(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Table, AlignsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableCell, FormatsNumbers) {
  EXPECT_EQ(cell(std::int64_t{42}), "42");
  EXPECT_EQ(cell(3.14159, 3), "3.142");
  EXPECT_EQ(cell(2.0, 3), "2");
  EXPECT_EQ(cell(2.5, 1), "2.5");
}

TEST(AsciiTree, RendersSmallTree) {
  // 0 is root with children 1,2; 1 has child 3.
  const std::vector<int> parent{-1, 0, 0, 1};
  const auto label = [](int i) { return std::to_string(i); };
  const std::string art = render_tree(parent, label);
  EXPECT_NE(art.find("0\n"), std::string::npos);
  EXPECT_NE(art.find("+-- 1"), std::string::npos);
  EXPECT_NE(art.find("`-- 2"), std::string::npos);
}

TEST(Arena, AlignsAndCountsAllocations) {
  Arena arena;
  auto* a = static_cast<char*>(arena.allocate(3, 1));
  auto* b = static_cast<double*>(arena.allocate(sizeof(double), 8));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(arena.allocations(), 2);
  // 3 bytes, then 5 bytes of padding to reach the 8-byte boundary, then 8.
  EXPECT_EQ(arena.bytes_served(), 16);
  EXPECT_EQ(arena.chunks(), 1);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(nullptr, "test", /*chunk_bytes=*/256);
  arena.allocate(8, 8);
  EXPECT_EQ(arena.chunks(), 1);
  auto* big = arena.allocate(4096, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.chunks(), 2);
  EXPECT_GE(arena.bytes_reserved(), 4096 + 256);
}

TEST(Arena, ChargesAndReleasesLedger) {
  BudgetLedger ledger(MemoryBudget{1 << 20});
  {
    Arena arena(&ledger, "test", /*chunk_bytes=*/1024);
    arena.allocate(16, 8);
    EXPECT_GE(ledger.used(), 1024u);
  }
  EXPECT_EQ(ledger.used(), 0u);
}

TEST(Arena, BudgetOverrunThrowsBeforeAllocating) {
  BudgetLedger ledger(MemoryBudget{512});
  Arena arena(&ledger, "test", /*chunk_bytes=*/1024);
  EXPECT_THROW(arena.allocate(16, 8), BudgetExceeded);
  EXPECT_EQ(arena.chunks(), 0);
  EXPECT_EQ(ledger.used(), 0u);
}

TEST(Arena, VectorGrowsOnArena) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_GT(arena.allocations(), 0);
  EXPECT_GE(arena.bytes_served(),
            static_cast<std::int64_t>(1000 * sizeof(int)));
}

TEST(AsciiTree, RendersLevels) {
  const std::vector<int> parent{-1, 0, 0, 1};
  const auto label = [](int i) { return std::to_string(i); };
  EXPECT_EQ(render_levels(parent, label), "0 | 1 2 | 3\n");
}

}  // namespace
}  // namespace streamcast::util
