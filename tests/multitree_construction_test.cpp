// Construction tests: exact reproduction of the paper's Figure 3 instance
// (N = 15, d = 3) for both schemes, and the appendix correctness properties
// swept over an (N, d) grid.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/multitree/forest.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/structured.hpp"
#include "src/multitree/validate.hpp"

namespace streamcast::multitree {
namespace {

std::vector<NodeKey> positions_1_to_n(const Forest& f, int k) {
  std::vector<NodeKey> out;
  for (NodeKey pos = 1; pos <= f.n_pad(); ++pos) {
    out.push_back(f.node_at(k, pos));
  }
  return out;
}

TEST(ForestBasics, GroupSizesMatchPaper) {
  // N = 15, d = 3 (Figure 3): I = 4, G_0..G_2 of size 4, G_3 = {13,14,15}.
  const Forest f(15, 3);
  EXPECT_EQ(f.interior(), 4);
  EXPECT_EQ(f.n_pad(), 15);
  EXPECT_EQ(f.group(0), (std::vector<NodeKey>{1, 2, 3, 4}));
  EXPECT_EQ(f.group(1), (std::vector<NodeKey>{5, 6, 7, 8}));
  EXPECT_EQ(f.group(2), (std::vector<NodeKey>{9, 10, 11, 12}));
  EXPECT_EQ(f.group(3), (std::vector<NodeKey>{13, 14, 15}));
}

TEST(ForestBasics, PaddingAddsDummiesOnlyAtTheTail) {
  const Forest f(16, 3);  // I = ceil(16/3)-1 = 5, n_pad = 18
  EXPECT_EQ(f.interior(), 5);
  EXPECT_EQ(f.n_pad(), 18);
  EXPECT_FALSE(f.is_dummy(16));
  EXPECT_TRUE(f.is_dummy(17));
  EXPECT_TRUE(f.is_dummy(18));
  EXPECT_EQ(f.group(3), (std::vector<NodeKey>{16, 17, 18}));
}

TEST(ForestBasics, PositionArithmetic) {
  const Forest f(15, 3);
  EXPECT_EQ(f.parent_pos(1), 0);
  EXPECT_EQ(f.parent_pos(3), 0);
  EXPECT_EQ(f.parent_pos(4), 1);
  EXPECT_EQ(f.parent_pos(6), 1);
  EXPECT_EQ(f.parent_pos(13), 4);
  EXPECT_EQ(f.child_pos(1, 0), 4);
  EXPECT_EQ(f.child_pos(4, 2), 15);
  EXPECT_EQ(f.child_index(1), 0);
  EXPECT_EQ(f.child_index(3), 2);
  EXPECT_EQ(f.child_index(15), 2);
  EXPECT_EQ(f.depth_of(1), 1);
  EXPECT_EQ(f.depth_of(12), 2);
  EXPECT_EQ(f.depth_of(13), 3);
  EXPECT_EQ(f.height(), 3);
}

TEST(StructuredConstruction, ReproducesFigure3a) {
  const Forest f = build_structured(15, 3);
  EXPECT_EQ(positions_1_to_n(f, 0),
            (std::vector<NodeKey>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                  14, 15}));
  EXPECT_EQ(positions_1_to_n(f, 1),
            (std::vector<NodeKey>{5, 6, 7, 8, 9, 10, 11, 12, 1, 2, 3, 4, 15,
                                  13, 14}));
  EXPECT_EQ(positions_1_to_n(f, 2),
            (std::vector<NodeKey>{9, 10, 11, 12, 1, 2, 3, 4, 5, 6, 7, 8, 14,
                                  15, 13}));
}

TEST(GreedyConstruction, ReproducesFigure3b) {
  const Forest f = build_greedy(15, 3);
  // T_0 is the identity layout in both schemes.
  EXPECT_EQ(positions_1_to_n(f, 0),
            (std::vector<NodeKey>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                  14, 15}));
  // Figure 3(b): T_1 = S / 5 6 7 8 / 3 1 2 9 4 11 12 10 / 14 15 13.
  EXPECT_EQ(positions_1_to_n(f, 1),
            (std::vector<NodeKey>{5, 6, 7, 8, 3, 1, 2, 9, 4, 11, 12, 10, 14,
                                  15, 13}));
}

TEST(GreedyConstruction, ParitySlotRuleHolds) {
  for (const NodeKey n : {15, 16, 18, 30, 100}) {
    for (const int d : {2, 3, 4, 5}) {
      const Forest f = build_greedy(n, d);
      const auto report = validate_greedy_parity(f);
      EXPECT_TRUE(report.ok) << "n=" << n << " d=" << d << ": "
                             << (report.errors.empty() ? ""
                                                       : report.errors[0]);
    }
  }
}

TEST(GreedyConstruction, HandlesThePaperInfeasibleCase) {
  // N = 18, d = 3: the paper's literal Step 2 cannot fill T_1's interior
  // from G_1 = {6..10} (two parity-1 positions, one parity-1 candidate).
  // Our generalized pool must still produce a fully valid forest.
  const Forest f = build_greedy(18, 3);
  EXPECT_TRUE(validate_forest(f).ok);
  EXPECT_TRUE(validate_greedy_parity(f).ok);
  // And the borrowed interior node must come from outside G_1.
  std::set<NodeKey> t1_interior;
  for (NodeKey pos = 1; pos <= f.interior(); ++pos) {
    t1_interior.insert(f.node_at(1, pos));
  }
  bool outside_g1 = false;
  for (const NodeKey id : t1_interior) {
    if (id < 6 || id > 10) outside_g1 = true;
  }
  EXPECT_TRUE(outside_g1);
}

TEST(InteriorTreeOf, MatchesGroupMembership) {
  const Forest f = build_greedy(15, 3);
  // G_0 = {1..4} interior in T_0, G_1 = {5..8} in T_1, G_2 = {9..12} in T_2,
  // G_3 = {13,14,15} all-leaf.
  for (NodeKey id = 1; id <= 4; ++id) EXPECT_EQ(f.interior_tree_of(id), 0);
  for (NodeKey id = 5; id <= 8; ++id) EXPECT_EQ(f.interior_tree_of(id), 1);
  for (NodeKey id = 9; id <= 12; ++id) EXPECT_EQ(f.interior_tree_of(id), 2);
  for (NodeKey id = 13; id <= 15; ++id) EXPECT_EQ(f.interior_tree_of(id), -1);
}

TEST(PaperStrictGreedy, FeasibilityCharacterization) {
  // d | I or d | (I-1) characterizes when the paper's literal Step 2 has a
  // valid output; verified against the verbatim implementation for a dense
  // grid.
  for (int d = 2; d <= 6; ++d) {
    for (NodeKey n = d; n <= 150; ++n) {
      const bool predicted = paper_strict_greedy_feasible(n, d);
      bool succeeded = true;
      try {
        const Forest f = build_greedy_paper_strict(n, d);
        EXPECT_TRUE(validate_forest(f).ok) << "n=" << n << " d=" << d;
      } catch (const std::runtime_error&) {
        succeeded = false;
      }
      EXPECT_EQ(predicted, succeeded) << "n=" << n << " d=" << d;
    }
  }
}

TEST(PaperStrictGreedy, AgreesWithGeneralizedPoolWhenFeasible) {
  // The generalized pool reproduces the paper's rule verbatim wherever the
  // paper's rule works at all.
  for (int d = 2; d <= 5; ++d) {
    for (NodeKey n = d; n <= 120; ++n) {
      if (!paper_strict_greedy_feasible(n, d)) continue;
      const Forest strict = build_greedy_paper_strict(n, d);
      const Forest pool = build_greedy(n, d);
      for (int k = 0; k < d; ++k) {
        EXPECT_EQ(strict.tree(k), pool.tree(k)) << "n=" << n << " d=" << d;
      }
    }
  }
}

TEST(PaperStrictGreedy, KnownInfeasibleCase) {
  EXPECT_FALSE(paper_strict_greedy_feasible(18, 3));
  EXPECT_THROW(build_greedy_paper_strict(18, 3), std::runtime_error);
  // The paper's own example is feasible (I = 4, d = 3: d | I-1).
  EXPECT_TRUE(paper_strict_greedy_feasible(15, 3));
}

// ---------------------------------------------------------------------------
// Property sweep: both constructions satisfy the appendix invariants for a
// grid of (N, d).
// ---------------------------------------------------------------------------

using GridParam = std::tuple<int, int>;  // (N, d)

class ConstructionGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ConstructionGrid, StructuredSatisfiesAppendixProperties) {
  const auto [n, d] = GetParam();
  const Forest f = build_structured(n, d);
  const auto report = validate_forest(f);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST_P(ConstructionGrid, GreedySatisfiesAppendixProperties) {
  const auto [n, d] = GetParam();
  const Forest f = build_greedy(n, d);
  const auto report = validate_forest(f);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(validate_greedy_parity(f).ok);
}

TEST_P(ConstructionGrid, BothConstructionsShareTreeZeroAndHeight) {
  const auto [n, d] = GetParam();
  const Forest a = build_structured(n, d);
  const Forest b = build_greedy(n, d);
  EXPECT_EQ(a.tree(0), b.tree(0));
  EXPECT_EQ(a.height(), b.height());
}

std::vector<GridParam> construction_grid() {
  std::vector<GridParam> grid;
  for (const int d : {1, 2, 3, 4, 5, 6, 7, 8}) {
    for (const int n : {1,  2,  3,  5,  7,  8,  12, 13, 15, 18,  26,
                        27, 40, 63, 64, 81, 100, 121, 200, 255, 341}) {
      grid.emplace_back(n, d);
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConstructionGrid,
                         ::testing::ValuesIn(construction_grid()),
                         [](const auto& tp) {
                           return "N" + std::to_string(std::get<0>(tp.param)) +
                                  "_d" + std::to_string(std::get<1>(tp.param));
                         });

TEST(StructuredClosedForm, MatchesBuiltTreesOnGrid) {
  // structured_position is an O(1) closed form of the whole construction.
  for (const int d : {1, 2, 3, 4, 5, 6}) {
    for (const NodeKey n : {1, 5, 12, 15, 18, 40, 100, 121}) {
      const Forest f = build_structured(n, d);
      for (int k = 0; k < d; ++k) {
        for (NodeKey x = 1; x <= f.n_pad(); ++x) {
          ASSERT_EQ(structured_position(n, d, k, x), f.position_of(k, x))
              << "n=" << n << " d=" << d << " k=" << k << " x=" << x;
        }
      }
    }
  }
}

TEST(StructuredClosedForm, RejectsOutOfRange) {
  EXPECT_THROW(structured_position(15, 3, 0, 0), std::invalid_argument);
  EXPECT_THROW(structured_position(15, 3, 0, 16), std::invalid_argument);
  EXPECT_THROW(structured_position(15, 3, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::multitree
