// Schedule tests: the closed-form arrival offsets against the paper's worked
// example, and full engine simulations cross-checked against the closed form
// for a grid of (N, d, construction, mode).
#include <gtest/gtest.h>

#include <tuple>

#include "src/metrics/buffers.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/neighbors.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/protocol.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/structured.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/trace.hpp"

namespace streamcast::multitree {
namespace {

using metrics::DelayRecorder;
using sim::Slot;

/// Runs the multi-tree protocol and returns the recorder over `window`
/// packets. Horizon: enough slots for the window plus worst-case delay.
DelayRecorder simulate(const Forest& forest, StreamMode mode,
                       sim::PacketId window) {
  net::UniformCluster topo(forest.n(), forest.d());
  MultiTreeProtocol proto(forest, mode);
  sim::Engine engine(topo, proto);
  DelayRecorder rec(forest.n() + 1, window);
  engine.add_observer(rec);
  const Slot horizon = window + worst_delay_bound(forest.n(), forest.d()) +
                       3 * forest.d() + 4;
  engine.run_until(horizon);
  return rec;
}

TEST(ArrivalOffsets, PaperWorkedExample) {
  // §2.2.3 with Figure 3: in tree T_0, node at position 1 receives packet 0
  // in slot 0, then forwards it to its children (positions 5, 6, 4) in slots
  // 1, 2, 3.
  const Forest f = build_greedy(15, 3);
  const auto off = arrival_offsets(f, 0);
  EXPECT_EQ(off[1], 0);
  EXPECT_EQ(off[2], 1);
  EXPECT_EQ(off[3], 2);
  EXPECT_EQ(off[5], 1);
  EXPECT_EQ(off[6], 2);
  EXPECT_EQ(off[4], 3);
}

TEST(ArrivalOffsets, BoundedByDepthTimesD) {
  for (const int d : {2, 3, 4, 5}) {
    for (const NodeKey n : {7, 15, 40, 100, 255}) {
      const Forest f = build_greedy(n, d);
      const auto off = arrival_offsets(f, 0);
      for (NodeKey p = 1; p <= f.n_pad(); ++p) {
        EXPECT_LE(off[static_cast<std::size_t>(p)],
                  static_cast<Slot>(f.depth_of(p)) * d);
        EXPECT_GE(off[static_cast<std::size_t>(p)],
                  static_cast<Slot>(f.depth_of(p)) - 1);
      }
    }
  }
}

TEST(ClosedFormDelay, PaperNodeOneIsOne) {
  // Node 1 in the Figure 3 forest receives packets 0,1,2 in slots 0,2,1:
  // delay 1 under our convention (DESIGN.md §3).
  const Forest f = build_greedy(15, 3);
  const auto delays = closed_form_delays(f);
  EXPECT_EQ(delays[1], 1);
}

TEST(ClosedFormDelay, RespectsTheoremTwoBound) {
  for (const int d : {2, 3, 4, 5}) {
    for (const NodeKey n : {5, 12, 15, 39, 100, 363, 1000}) {
      for (const bool greedy : {false, true}) {
        const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
        EXPECT_LE(closed_form_worst_delay(f), worst_delay_bound(n, d))
            << "n=" << n << " d=" << d << " greedy=" << greedy;
      }
    }
  }
}

TEST(Simulation, MatchesPaperExampleSlotBySlot) {
  // §2.2.3: "in time slot 0, S sends packet 0 to node id 1 in tree T_0,
  // packet 1 to node 5 in T_1, and packet 2 to node 9 in T_2. Then, in time
  // slot 1, S sends packet 0 to node 2 in T_0, packet 1 to node 6 in T_1 and
  // packet 2 to node 10 in T_2."
  const Forest f = build_greedy(15, 3);
  MultiTreeProtocol proto(f);
  std::vector<sim::Tx> slot0, slot1;
  proto.transmit(0, slot0);
  // Deliver S's slot-0 packets so interior recipients can forward in slot 1.
  for (const auto& tx : slot0) proto.deliver(0, tx);
  proto.transmit(1, slot1);

  const auto has = [](const std::vector<sim::Tx>& txs, sim::NodeKey from,
                      sim::NodeKey to, sim::PacketId p) {
    for (const auto& tx : txs) {
      if (tx.from == from && tx.to == to && tx.packet == p) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(slot0, 0, 1, 0));
  EXPECT_TRUE(has(slot0, 0, 5, 1));
  EXPECT_TRUE(has(slot0, 0, 9, 2));
  EXPECT_EQ(slot0.size(), 3u);
  EXPECT_TRUE(has(slot1, 0, 2, 0));
  EXPECT_TRUE(has(slot1, 0, 6, 1));
  EXPECT_TRUE(has(slot1, 0, 10, 2));
  // "After receiving packet 0 from S in slot 0 in T_0, node 1 will send
  // packet 0 to node 5 in slot 1" (its child index 1 in T_0 is node 5).
  EXPECT_TRUE(has(slot1, 1, 5, 0));
}

// ---------------------------------------------------------------------------
// Grid: simulation agrees exactly with the closed form (pre-recorded) and is
// shifted by exactly d (live-prebuffered). All engine invariants (capacity,
// no duplicates) hold implicitly — violations throw.
// ---------------------------------------------------------------------------

using Param = std::tuple<int, int, bool>;  // N, d, greedy?

class ScheduleGrid : public ::testing::TestWithParam<Param> {};

TEST_P(ScheduleGrid, SimulationMatchesClosedForm) {
  const auto [n, d, greedy] = GetParam();
  const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
  const sim::PacketId window = 2 * d * (f.height() + 2);
  const auto rec = simulate(f, StreamMode::kPreRecorded, window);
  const auto expected = closed_form_delays(f);
  for (NodeKey x = 1; x <= f.n(); ++x) {
    ASSERT_TRUE(rec.complete(x)) << "node " << x;
    EXPECT_EQ(rec.playback_delay(x), expected[static_cast<std::size_t>(x)])
        << "node " << x;
  }
}

TEST_P(ScheduleGrid, LivePrebufferedShiftsDelaysByExactlyD) {
  const auto [n, d, greedy] = GetParam();
  const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
  const sim::PacketId window = 2 * d * (f.height() + 2);
  const auto rec = simulate(f, StreamMode::kLivePrebuffered, window);
  const auto expected = closed_form_delays(f);
  for (NodeKey x = 1; x <= f.n(); ++x) {
    ASSERT_TRUE(rec.complete(x));
    EXPECT_EQ(rec.playback_delay(x),
              expected[static_cast<std::size_t>(x)] + d);
  }
}

TEST_P(ScheduleGrid, LivePipelinedMatchesItsClosedForm) {
  const auto [n, d, greedy] = GetParam();
  const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
  const sim::PacketId window = 2 * d * (f.height() + 2);
  // Engine enforces receive-capacity 1: a collision would throw.
  const auto rec = simulate(f, StreamMode::kLivePipelined, window);
  const auto expected = closed_form_delays_pipelined(f);
  for (NodeKey x = 1; x <= f.n(); ++x) {
    ASSERT_TRUE(rec.complete(x));
    // The per-tree slip analysis predicts every node's delay exactly —
    // the analysis §2.2.3 calls "not easy".
    EXPECT_EQ(*rec.playback_delay(x), expected[static_cast<std::size_t>(x)])
        << "node " << x;
    // And pipelining never costs more than d over the worst-case bound.
    EXPECT_LE(*rec.playback_delay(x), worst_delay_bound(n, d) + d);
  }
}

TEST_P(ScheduleGrid, NeighborCountAtMostTwoD) {
  const auto [n, d, greedy] = GetParam();
  const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
  net::UniformCluster topo(f.n(), d);
  MultiTreeProtocol proto(f);
  sim::Engine engine(topo, proto);
  metrics::NeighborRecorder rec(f.n() + 1);
  engine.add_observer(rec);
  engine.run_until(4 * worst_delay_bound(n, d) + 8);
  // §1: each node communicates with at most 2d nodes (d parents + d
  // children), where S may count as several of the d parents.
  EXPECT_LE(rec.max_count(1, f.n()), 2 * static_cast<std::size_t>(d));
}

TEST_P(ScheduleGrid, BufferOccupancyWithinTheoremTwoBound) {
  const auto [n, d, greedy] = GetParam();
  const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
  const sim::PacketId window = 2 * d * (f.height() + 2);
  const auto rec = simulate(f, StreamMode::kPreRecorded, window);
  const auto occ = metrics::max_occupancies(rec, 1, f.n());
  for (const std::size_t o : occ) {
    EXPECT_LE(o, static_cast<std::size_t>(worst_delay_bound(n, d)));
  }
}

// ---------------------------------------------------------------------------
// Memoized periodic-schedule cache: the replayed closed form must reproduce
// the cursor-driven pump's transmissions byte for byte, warm-up included.
// ---------------------------------------------------------------------------

/// Simulates with the cache either active (the default) or forced off, and
/// returns the full delivery trace.
std::vector<sim::Delivery> traced_run(const Forest& forest, StreamMode mode,
                                      bool cached) {
  net::UniformCluster topo(forest.n(), forest.d());
  MultiTreeProtocol proto(forest, mode);
  if (!cached) proto.use_periodic_cache(false);
  EXPECT_EQ(proto.periodic_cache_active(), cached);
  sim::Engine engine(topo, proto);
  sim::Trace trace;
  engine.add_observer(trace);
  engine.run_until(4 * worst_delay_bound(forest.n(), forest.d()) + 16);
  return trace.all();
}

TEST(PeriodicCache, ReplaysCursorPumpByteForByte) {
  for (const bool greedy : {false, true}) {
    for (const auto mode :
         {StreamMode::kPreRecorded, StreamMode::kLivePrebuffered}) {
      for (const int d : {1, 2, 3, 5}) {
        for (const NodeKey n : {1, 2, 7, 15, 40, 121}) {
          const Forest f =
              greedy ? build_greedy(n, d) : build_structured(n, d);
          const auto cached = traced_run(f, mode, true);
          const auto pumped = traced_run(f, mode, false);
          ASSERT_EQ(cached.size(), pumped.size())
              << "n=" << n << " d=" << d << " greedy=" << greedy;
          for (std::size_t i = 0; i < cached.size(); ++i) {
            const sim::Delivery& a = cached[i];
            const sim::Delivery& b = pumped[i];
            ASSERT_TRUE(a.sent == b.sent && a.received == b.received &&
                        a.tx.from == b.tx.from && a.tx.to == b.tx.to &&
                        a.tx.packet == b.tx.packet && a.tx.tag == b.tx.tag)
                << "n=" << n << " d=" << d << " delivery " << i;
          }
        }
      }
    }
  }
}

TEST(PeriodicCache, DisabledForPipelinedAndGatedSources) {
  const Forest f = build_greedy(15, 3);
  MultiTreeProtocol pipelined(f, StreamMode::kLivePipelined);
  EXPECT_FALSE(pipelined.periodic_cache_active());
  pipelined.use_periodic_cache(true);  // ineligible: request ignored
  EXPECT_FALSE(pipelined.periodic_cache_active());
  MultiTreeProtocol gated(f, StreamMode::kPreRecorded,
                          [](sim::PacketId, Slot) { return true; });
  EXPECT_FALSE(gated.periodic_cache_active());
}

TEST(PeriodicCache, EnabledByDefaultForEligibleModes) {
  const Forest f = build_greedy(15, 3);
  MultiTreeProtocol pre(f, StreamMode::kPreRecorded);
  EXPECT_TRUE(pre.periodic_cache_active());
  MultiTreeProtocol live(f, StreamMode::kLivePrebuffered);
  EXPECT_TRUE(live.periodic_cache_active());
  pre.use_periodic_cache(false);
  EXPECT_FALSE(pre.periodic_cache_active());
}

std::vector<Param> schedule_grid() {
  std::vector<Param> grid;
  for (const bool greedy : {false, true}) {
    for (const int d : {1, 2, 3, 4, 5}) {
      for (const int n : {1, 2, 5, 7, 12, 15, 18, 31, 64, 121}) {
        grid.emplace_back(n, d, greedy);
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleGrid, ::testing::ValuesIn(schedule_grid()),
    [](const auto& tp) {
      return std::string(std::get<2>(tp.param) ? "greedy" : "structured") +
             "_N" + std::to_string(std::get<0>(tp.param)) + "_d" +
             std::to_string(std::get<1>(tp.param));
    });

}  // namespace
}  // namespace streamcast::multitree
