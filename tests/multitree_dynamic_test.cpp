// Dynamic (mid-stream) churn tests: the protocol keeps streaming while the
// forest mutates; stable viewers stay hiccup-free, joiners enter at the
// live edge, and the engine's capacity/collision checks hold throughout.
#include <gtest/gtest.h>

#include <vector>

#include "src/metrics/delay.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/churn.hpp"
#include "src/multitree/dynamic.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/validate.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/prng.hpp"

namespace streamcast::multitree {
namespace {

using sim::Slot;

/// A world big enough for growth: engine topology sized at capacity.
struct DynamicWorld {
  DynamicWorld(NodeKey n0, int d, ChurnPolicy policy, NodeKey capacity)
      : churn(n0, d, policy),
        proto(churn),
        topo(capacity, d),
        // Duplicates are allowed: shrink+grow cycles reset structural-id
        // state, so re-delivery to a reoccupied id is legitimate (counted
        // per peer by the tracker). Capacity checks stay on.
        engine(topo, proto,
               sim::EngineOptions{.forbid_duplicates = false}),
        margin(worst_delay_bound(capacity, d) + 2 * d),
        tracker(churn, proto, margin) {
    engine.add_observer(tracker);
    for (NodeKey id = 1; id <= n0; ++id) {
      tracker.peer_seated(churn.peer_at(id), 0);
    }
  }

  PeerId add(Slot now) {
    const PeerId p = churn.add();
    proto.resync(now);
    tracker.peer_seated(p, now);
    return p;
  }

  void remove(PeerId p, Slot now) {
    tracker.peer_left(p, now);
    churn.remove(p);
    proto.resync(now);
  }

  ChurnForest churn;
  DynamicMultiTreeProtocol proto;
  net::UniformCluster topo;
  sim::Engine engine;
  Slot margin;
  PeerQosTracker tracker;
};

TEST(Dynamic, NoChurnMeansNoHiccups) {
  DynamicWorld world(20, 2, ChurnPolicy::kEager, 64);
  world.engine.run_until(300);
  world.tracker.finish(300);
  EXPECT_EQ(world.tracker.total_hiccups(), 0);
  EXPECT_GT(world.tracker.total_played(), 20 * 200);
}

TEST(Dynamic, StaticRunMatchesStaticProtocolDeliveries) {
  // With no churn events, the dynamic protocol is the static round-robin
  // schedule: every occupied node receives one packet per tree per d slots.
  DynamicWorld world(15, 3, ChurnPolicy::kEager, 32);
  metrics::DelayRecorder rec(33, 30);
  world.engine.add_observer(rec);
  world.engine.run_until(120);
  const Forest reference = build_greedy(15, 3);
  const auto expected = closed_form_delays(reference);
  for (NodeKey x = 1; x <= 15; ++x) {
    ASSERT_TRUE(rec.complete(x));
    EXPECT_EQ(*rec.playback_delay(x), expected[static_cast<std::size_t>(x)]);
  }
}

TEST(Dynamic, JoinerEntersAtLiveEdgeWithoutHiccups) {
  DynamicWorld world(13, 3, ChurnPolicy::kEager, 64);
  world.engine.run_until(100);
  world.add(100);  // N = 13 -> 14, non-boundary: nobody moves
  world.engine.run_until(400);
  world.tracker.finish(400);
  EXPECT_EQ(world.tracker.total_hiccups(), 0);
  EXPECT_EQ(world.tracker.peers_tracked(), 14u);
}

TEST(Dynamic, LeafDepartureDisturbsNobody) {
  DynamicWorld world(14, 3, ChurnPolicy::kEager, 64);
  world.engine.run_until(100);
  // Peer at the last id is the all-leaf replacement candidate: removing it
  // relabels nobody.
  world.remove(world.churn.peer_at(14), 100);
  world.engine.run_until(400);
  world.tracker.finish(400);
  EXPECT_EQ(world.tracker.total_hiccups(), 0);
}

TEST(Dynamic, InteriorDepartureHiccupsAreBounded) {
  DynamicWorld world(14, 3, ChurnPolicy::kEager, 64);
  world.engine.run_until(100);
  // Remove an interior peer: its replacement (the old id-14 peer) moves to
  // interior positions and misses some in-flight packets.
  world.remove(world.churn.peer_at(2), 100);
  world.engine.run_until(500);
  world.tracker.finish(500);
  // Only the moved peer (plus possibly its new subtree, briefly) may hiccup.
  EXPECT_LE(world.tracker.peers_with_hiccups(), 4u);
  EXPECT_LE(world.tracker.total_hiccups(), 60);
  // And playback overall continued: hiccups are a tiny fraction of plays.
  EXPECT_GT(world.tracker.total_played(),
            50 * world.tracker.total_hiccups());
}

TEST(Dynamic, RandomChurnSoakKeepsEngineInvariantsAndRecovers) {
  for (const int d : {2, 3}) {
    DynamicWorld world(30, d, ChurnPolicy::kEager, 128);
    util::Prng rng(555);
    Slot now = 0;
    std::vector<PeerId> alive;
    for (NodeKey id = 1; id <= 30; ++id) {
      alive.push_back(world.churn.peer_at(id));
    }
    for (int event = 0; event < 30; ++event) {
      now += 40;
      world.engine.run_until(now);  // throws on any capacity violation
      if (world.churn.n() > 3 && rng.chance(0.5)) {
        const auto idx = static_cast<std::size_t>(rng.below(alive.size()));
        world.remove(alive[idx], now);
      } else {
        world.add(now);
      }
      alive.clear();
      for (NodeKey id = 1; id <= world.churn.n(); ++id) {
        alive.push_back(world.churn.peer_at(id));
      }
      ASSERT_TRUE(validate_forest(world.churn.forest()).ok);
    }
    // Quiet period long enough for the overlay to fully recover, then
    // finalize everyone's playback accounting.
    const Slot end = now + world.margin + 240;
    world.engine.run_until(end);
    world.tracker.finish(end);
    // Hiccups happened (moves are real) but playback dominated.
    EXPECT_GT(world.tracker.total_played(),
              10 * (world.tracker.total_hiccups() + 1))
        << "d=" << d;
  }
}

TEST(Dynamic, LiveEdgeAdvancesWithTime) {
  DynamicWorld world(10, 2, ChurnPolicy::kEager, 32);
  const auto edge0 = world.proto.live_edge();
  world.engine.run_until(50);
  const auto edge1 = world.proto.live_edge();
  EXPECT_GT(edge1, edge0);
  EXPECT_NEAR(static_cast<double>(edge1 - edge0), 50.0, 4.0);
}

TEST(Dynamic, HighestReceivedTracksStream) {
  DynamicWorld world(15, 3, ChurnPolicy::kEager, 32);
  world.engine.run_until(60);
  // Node 1 (interior in T_0, depth 1) has received about 60/3 rounds.
  const auto m = world.proto.highest_received(1, 0);
  EXPECT_GT(m, 15);
  EXPECT_LE(m, 20);
  // And out-of-range queries are safe.
  EXPECT_EQ(world.proto.highest_received(999, 0), -1);
}

}  // namespace
}  // namespace streamcast::multitree
