// Inside src/policy/ the strategy switch IS the registry's implementation
// site — the rule exempts the policy module by path.
namespace streamcast::policy {

enum class RecoveryMode { kNone, kNack, kFec };

const char* recovery_mode_name(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kNone:
      return "none";
    case RecoveryMode::kNack:
      return "nack";
    case RecoveryMode::kFec:
      return "fec";
  }
  return "unknown";
}

}  // namespace streamcast::policy
