// Legacy label mapping kept for a serialized-report reader; the dispatch is
// deliberate and every matching line carries a suppression.
namespace policy {
enum class RecoveryMode { kNone, kNack };
}

const char* legacy_label(policy::RecoveryMode mode) {
  switch (mode) {  // plain switch header: only Recovery-typed text matches
    case policy::RecoveryMode::kNone:  // lint: allow(policy-dispatch)
      return "none";
    case policy::RecoveryMode::kNack:  // lint: allow(policy-dispatch)
      return "nack";
  }
  return "unknown";
}
