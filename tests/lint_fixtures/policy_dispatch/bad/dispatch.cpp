// A bench-side helper that re-inlines recovery strategy dispatch instead of
// routing through the policy registry: every case arm and the switch over a
// RecoveryMode expression must be flagged.
#include <string>

namespace streamcast::policy {
enum class RecoveryMode { kNone, kNack, kFec };
}

std::string pick_label(streamcast::policy::RecoveryMode mode) {
  switch (mode) {
    case streamcast::policy::RecoveryMode::kNone:
      return "none";
    case streamcast::policy::RecoveryMode::kNack:
      return "nack";
    case streamcast::policy::RecoveryMode::kFec:
      return "fec";
  }
  return "unknown";
}

int arm_count(int raw) {
  switch (static_cast<streamcast::policy::RecoveryMode>(raw)) {
    default:
      return 0;
  }
}
