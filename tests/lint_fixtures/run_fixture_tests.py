#!/usr/bin/env python3
"""Golden fixture tests for tools/lint_ast.py (run from CTest).

Each fixture directory contains a `bad/` tree that must produce findings of
a specific rule in specific files and/or a `clean/` tree that must produce
none. For every rule whose violation hides behind an alias, a member
typedef, or a line break, the runner additionally proves the REGEX lint
misses it: tools/lint_determinism.py must exit 0 on the violating file that
lint_ast flags. That asymmetry — semantic engine catches, regex engine
passes — is the contract this whole fixture suite pins down.

Exit status: 0 all expectations hold, 1 otherwise.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT_AST = REPO / "tools" / "lint_ast.py"
LINT_REGEX = REPO / "tools" / "lint_determinism.py"

failures: list[str] = []


def run(cmd: list[str]) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable] + cmd, capture_output=True, text=True, cwd=REPO)
    return proc.returncode, proc.stdout + proc.stderr


def lint_ast(paths: list[Path], extra: list[str] | None = None):
    return run([str(LINT_AST), *map(str, paths), *(extra or [])])


def check(name: str, ok: bool, detail: str = ""):
    if ok:
        print(f"  PASS  {name}")
    else:
        print(f"  FAIL  {name}\n{detail}")
        failures.append(name)


def expect_finding(name: str, target: Path, rule: str, in_file: str,
                   extra: list[str] | None = None):
    code, out = lint_ast([target], extra)
    hit = any(f"[{rule}]" in line and in_file in line
              for line in out.splitlines())
    check(name, code == 1 and hit, out)


def expect_clean(name: str, target: Path, extra: list[str] | None = None):
    code, out = lint_ast([target], extra)
    check(name, code == 0, out)


def expect_regex_misses(name: str, violating_file: Path):
    code, out = run([str(LINT_REGEX), str(violating_file)])
    check(name, code == 0,
          f"regex lint unexpectedly caught it:\n{out}")


def main() -> int:
    # rng via file-level alias: lint_ast flags the use site, regex cannot.
    expect_finding("rng alias: semantic engine flags use.cpp",
                   HERE / "rng_alias" / "bad", "rng", "use.cpp")
    expect_regex_misses("rng alias: regex lint misses use.cpp",
                        HERE / "rng_alias" / "bad" / "use.cpp")
    expect_clean("rng alias: util::Prng alias stays clean",
                 HERE / "rng_alias" / "clean")

    # rng via member typedef: second alias shape the regex provably misses.
    expect_finding("rng member typedef: semantic engine flags use.cpp",
                   HERE / "rng_member_typedef" / "bad", "rng", "use.cpp")
    expect_regex_misses("rng member typedef: regex lint misses use.cpp",
                        HERE / "rng_member_typedef" / "bad" / "use.cpp")

    # unordered iteration via alias declared in a header.
    expect_finding("unordered alias: semantic engine flags iterate.cpp",
                   HERE / "unordered_alias" / "bad",
                   "unordered-iteration", "iterate.cpp")
    expect_regex_misses("unordered alias: regex lint misses iterate.cpp",
                        HERE / "unordered_alias" / "bad" / "iterate.cpp")
    expect_clean("unordered alias: ordered iteration stays clean",
                 HERE / "unordered_alias" / "clean")

    # multi-line [&] into parallel_for.
    expect_finding("sweep capture: multi-line [&] flagged",
                   HERE / "sweep_capture" / "bad",
                   "sweep-capture", "sweep.cpp")
    expect_regex_misses("sweep capture: regex lint misses multi-line [&]",
                        HERE / "sweep_capture" / "bad" / "sweep.cpp")
    expect_clean("sweep capture: named captures stay clean",
                 HERE / "sweep_capture" / "clean")

    # hot-path-alloc: tagged files ban raw new / std::vector spellings.
    expect_finding("hot-path alloc: raw new flagged in tagged file",
                   HERE / "hot_path_alloc" / "bad",
                   "hot-path-alloc", "hot.cpp")
    code, out = lint_ast([HERE / "hot_path_alloc" / "bad"])
    check("hot-path alloc: vector spelling also flagged",
          code == 1 and sum("[hot-path-alloc]" in line
                            for line in out.splitlines()) >= 2, out)
    expect_clean("hot-path alloc: arena alias + allow markers stay clean",
                 HERE / "hot_path_alloc" / "clean")

    # layer DAG: upward and same-rank edges, against the real layers.toml.
    expect_finding("layer DAG: upward include flagged",
                   HERE / "layer_dag" / "bad", "layer-dag", "up.hpp")
    expect_finding("layer DAG: same-rank include flagged",
                   HERE / "layer_dag" / "bad", "layer-dag", "peer.hpp")
    expect_clean("layer DAG: downward includes stay clean",
                 HERE / "layer_dag" / "clean")

    # policy-dispatch: recovery strategy switches stay behind the registry.
    expect_finding("policy dispatch: case arm flagged outside src/policy",
                   HERE / "policy_dispatch" / "bad",
                   "policy-dispatch", "dispatch.cpp")
    code, out = lint_ast([HERE / "policy_dispatch" / "bad"])
    check("policy dispatch: every arm and the switch expression flagged",
          code == 1 and sum("[policy-dispatch]" in line
                            for line in out.splitlines()) >= 4, out)
    expect_clean("policy dispatch: src/policy path and allow markers clean",
                 HERE / "policy_dispatch" / "clean")

    # allow() suppressions silence both rules.
    expect_clean("suppression: allow() markers honored",
                 HERE / "suppression")

    print()
    if failures:
        print(f"lint fixtures: {len(failures)} expectation(s) FAILED")
        return 1
    print("lint fixtures: all expectations hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
