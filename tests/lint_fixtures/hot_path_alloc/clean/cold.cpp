// Untagged fixture: the hot-path marker comment appears nowhere in this
// file, so the rule does not apply — ordinary vector use and even raw new
// stay clean here.
#include <vector>

namespace fixture {

std::vector<int>* plain_cold_code(int n) {
  auto* v = new std::vector<int>();
  for (int i = 0; i < n; ++i) v->push_back(i);
  return v;
}

}  // namespace fixture
