// streamcast: hot-path (lint: hot-path-alloc applies to this file)
//
// Clean fixture: a hot-path-tagged file where every allocation is either
// arena-backed (the alias never spells std::vector) or explicitly allowed
// — same-line for short declarations, previous-line when the declaration
// cannot fit an 80-column trailing comment.
#include <vector>

namespace fixture {

template <typename T>
using ArenaVector = std::vector<T>;  // lint: allow(hot-path-alloc)

int arena_growth(int n) {
  ArenaVector<int> scratch;
  for (int i = 0; i < n; ++i) scratch.push_back(i);
  return static_cast<int>(scratch.size());
}

struct ColdState {
  // lint: allow(hot-path-alloc) — sized once at construction, never grown
  std::vector<long long> one_shot_construction_time_allocation_table;
};

}  // namespace fixture
