// streamcast: hot-path (lint: hot-path-alloc applies to this file)
//
// Violating fixture: direct heap traffic in a hot-path-tagged file with no
// allow marker. Both shapes must be flagged — the raw `new` expression and
// the std::vector spelling (whose growth reallocates on the global heap).
#include <vector>

namespace fixture {

int* raw_allocation(int n) { return new int[static_cast<unsigned>(n)]; }

int vector_growth(int n) {
  std::vector<int> scratch;
  for (int i = 0; i < n; ++i) scratch.push_back(i);
  return static_cast<int>(scratch.size());
}

}  // namespace fixture
