// CLEAN fixture: deliberate uses carry same-line allow() markers, which
// both engines must honor — zero findings expected here.
#include <random>
#include <unordered_map>

namespace fixture {

unsigned platform_comparison() {
  std::mt19937 reference(1);  // lint: allow(rng)
  return static_cast<unsigned>(reference());
}

int sum_any_order() {
  std::unordered_map<int, int> table{{1, 10}, {2, 20}};
  int sum = 0;
  for (const auto& kv : table) {  // lint: allow(unordered-iteration)
    sum += kv.second;
  }
  return sum;
}

}  // namespace fixture
