// CLEAN fixture (rule: rng): the repo's deterministic util::Prng under an
// alias must NOT be flagged — only aliases that canonicalize to a std
// engine are findings.
#include <cstdint>

namespace util {
struct Prng {
  explicit Prng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
};
}  // namespace util

namespace fixture {
using FastRng = util::Prng;

std::uint64_t draw() {
  FastRng rng(42);
  return rng.state;
}
}  // namespace fixture
