// VIOLATING fixture (rule: rng). The alias definition names the banned
// engine directly — both engines flag this line.
#pragma once
#include <random>

namespace fixture {
using FastRng = std::mt19937_64;
}  // namespace fixture
