// VIOLATING fixture (rule: rng) that the regex lint PROVABLY MISSES: no
// line of this file spells a std engine name — the banned canonical type
// arrives through the alias in fast_rng.hpp. Only a semantic engine that
// resolves FastRng to mersenne_twister_engine can flag the declaration.
#include "fast_rng.hpp"

namespace fixture {

unsigned draw() {
  FastRng rng(42);
  return static_cast<unsigned>(rng());
}

}  // namespace fixture
