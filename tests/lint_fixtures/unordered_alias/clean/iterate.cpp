// CLEAN fixture (rule: unordered-iteration): iterating an ordered map is
// fine, keyed lookups into an unordered one are too.
#include <map>
#include <unordered_map>

namespace fixture {

int sum_values() {
  std::map<int, int> ordered{{1, 10}, {2, 20}};
  std::unordered_map<int, int> lookup{{1, 10}};
  int sum = lookup.at(1);
  for (const auto& kv : ordered) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace fixture
