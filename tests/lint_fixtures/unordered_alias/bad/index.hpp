// Supporting header for the unordered-iteration alias fixture: the alias
// is defined here, far from the range-for that iterates it.
#pragma once
#include <unordered_map>

namespace fixture {
using Index = std::unordered_map<int, int>;
}  // namespace fixture
