// VIOLATING fixture (rule: unordered-iteration) that the regex lint
// PROVABLY MISSES: the regex requires a same-file std::unordered_* variable
// declaration, but this file declares through the Index alias from
// index.hpp — the implementation-defined hash order still leaks into the
// sum below.
#include "index.hpp"

namespace fixture {

int sum_values() {
  Index table_;
  table_[1] = 10;
  table_[2] = 20;
  int sum = 0;
  for (const auto& kv : table_) {
    sum += kv.second;
  }
  return sum;
}

}  // namespace fixture
