// CLEAN fixture (rule: sweep-capture): named captures (even by reference)
// are the sanctioned form — each one is auditable at the capture list.
namespace run {
template <class F>
void parallel_for(int begin, int end, F body) {
  for (int i = begin; i < end; ++i) body(i);
}
}  // namespace run

namespace fixture {

int sweep() {
  int shared = 0;
  run::parallel_for(
      0, 8,
      [&shared](int i) { shared += i; });
  return shared;
}

}  // namespace fixture
