// VIOLATING fixture (rule: sweep-capture) that the regex lint PROVABLY
// MISSES: the [&] default capture sits on a different line than the
// parallel_for call, so neither same-line pattern fires; only scanning the
// call's full argument list sees it.
namespace run {
template <class F>
void parallel_for(int begin, int end, F body) {
  for (int i = begin; i < end; ++i) body(i);
}
}  // namespace run

namespace fixture {

int sweep() {
  int shared = 0;
  run::parallel_for(
      0, 8,
      [&](int i) { shared += i; });
  return shared;
}

}  // namespace fixture
