// VIOLATING fixture (rule: rng) that the regex lint PROVABLY MISSES: the
// declaration below spells only Gen::engine_type, never a std engine name;
// resolving the member typedef to linear_congruential_engine takes a
// semantic pass.
#include "gen.hpp"

namespace fixture {

unsigned draw() {
  Gen::engine_type engine(7);
  return static_cast<unsigned>(engine());
}

}  // namespace fixture
