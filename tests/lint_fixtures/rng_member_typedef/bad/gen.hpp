// VIOLATING fixture (rule: rng): the engine hides behind a member typedef.
#pragma once
#include <random>

namespace fixture {
struct Gen {
  using engine_type = std::minstd_rand;
};
}  // namespace fixture
