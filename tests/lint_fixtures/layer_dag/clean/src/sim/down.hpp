// CLEAN fixture (rule: layer-dag): sim may include strictly lower ranks
// (util, the simbase vocabulary headers, net) and its own module.
#pragma once
#include "src/net/topology.hpp"
#include "src/sim/event.hpp"
#include "src/sim/packet.hpp"
#include "src/util/ints.hpp"
