// VIOLATING fixture (rule: layer-dag): metrics and graph share a rank, and
// same-rank modules must stay independent — an edge needs one of them
// demoted, not a lateral include.
#pragma once
#include "src/graph/graph.hpp"
