// VIOLATING fixture (rule: layer-dag): util is the bottom rank; including
// the simulation engine is an upward edge.
#pragma once
#include "src/sim/engine.hpp"
