#include <gtest/gtest.h>

#include "src/util/dot.hpp"

namespace streamcast::util {
namespace {

const std::vector<int> kTree{-1, 0, 0, 1};  // 0 -> {1,2}, 1 -> {3}
const auto kLabel = [](int i) { return "n" + std::to_string(i); };

TEST(Dot, TreeStructure) {
  const std::string dot = tree_to_dot("demo", kTree, kLabel);
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("\"0\" [label=\"n0\"]"), std::string::npos);
  EXPECT_NE(dot.find("\"0\" -> \"1\""), std::string::npos);
  EXPECT_NE(dot.find("\"0\" -> \"2\""), std::string::npos);
  EXPECT_NE(dot.find("\"1\" -> \"3\""), std::string::npos);
  // No edge into the root.
  EXPECT_EQ(dot.find("-> \"0\""), std::string::npos);
}

TEST(Dot, ForestSubgraphs) {
  const std::string dot = forest_to_dot("f", {kTree, kTree}, kLabel);
  EXPECT_NE(dot.find("subgraph cluster_T0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_T1"), std::string::npos);
  // Per-tree prefixes keep the two copies distinct.
  EXPECT_NE(dot.find("\"t0_1\""), std::string::npos);
  EXPECT_NE(dot.find("\"t1_1\""), std::string::npos);
  EXPECT_NE(dot.find("\"t1_0\" -> \"t1_2\""), std::string::npos);
}

TEST(Dot, SingleNodeTree) {
  const std::string dot = tree_to_dot("one", {-1}, kLabel);
  EXPECT_NE(dot.find("\"0\" [label=\"n0\"]"), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace streamcast::util
