// Registry-wide differential harness (ISSUE 7 tentpole).
//
// The golden parity grid (scheme_registry_test.cpp) locks the six
// deterministic schemes to captured bytes; the seeded randomized/dynamic
// schemes (random-regular, dynamic-trees) cannot be locked that way without
// freezing their PRNG draw sequences (see tests/scheme_parity_cells.hpp).
// This suite holds EVERY scheme — present and future, enumerated via
// scheme::all() — to the properties a byte-golden would imply but that
// survive behavior-preserving refactors:
//
//   1. Seed determinism: the same SessionConfig yields a byte-identical
//      serialized report on the serial path, on run_sweep at one thread,
//      and on run_sweep at many threads; distinct seeds actually change the
//      randomized schemes' overlays.
//   2. Audit-envelope satisfaction over an (N, d, T_c, seed) grid: every
//      scheme's registered delay/buffer envelope holds under the
//      InvariantAuditor at 3+ seeds.
//   3. Cross-scheme sanity: random-regular stays within its O(log N)
//      envelope as N doubles, and the dynamic forest is never worse than
//      the paper's static multi-tree bound once churn settles.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/session.hpp"
#include "src/dyntree/forest.hpp"
#include "src/multitree/analysis.hpp"
#include "src/rrd/digraph.hpp"
#include "src/run/sweep.hpp"
#include "src/scheme/registry.hpp"
#include "src/util/prng.hpp"
#include "tests/scheme_parity_cells.hpp"

namespace streamcast::core {
namespace {

std::string describe(const SessionConfig& cfg) {
  std::string s = std::string(scheme_name(cfg.scheme)) +
                  " N=" + std::to_string(cfg.n) +
                  " d=" + std::to_string(cfg.d) +
                  " seed=" + std::to_string(cfg.seed);
  if (cfg.clusters > 1) {
    s += " clusters=" + std::to_string(cfg.clusters) +
         " T_c=" + std::to_string(cfg.t_c);
  }
  return s;
}

/// One representative config per scheme, shaped by its capabilities.
std::vector<SessionConfig> representative_configs(std::uint64_t seed) {
  std::vector<SessionConfig> cfgs;
  for (const scheme::Descriptor& desc : scheme::all()) {
    SessionConfig cfg{.scheme = desc.id,
                      .n = 21,
                      .d = desc.caps.degree_sweep ? 2 : 1};
    cfg.seed = seed;
    cfgs.push_back(cfg);
  }
  return cfgs;
}

std::string serialize_result(const SessionConfig& cfg,
                             const run::TaskResult& r) {
  if (r.error) std::rethrow_exception(r.error);
  if (cfg.loss.model != loss::ErasureKind::kNone) {
    return serialize(LossRunResult{r.qos, r.loss, {}});
  }
  return serialize(r.qos);
}

TEST(SchemeDifferential, ReportsAreByteIdenticalAcrossRunnersAndThreads) {
  // Serial session == 1-thread sweep == 8-thread sweep, and a repeat of the
  // same task inside one sweep matches itself, for every scheme.
  auto tasks = representative_configs(0x5eed);
  const auto repeats = tasks.size();
  for (std::size_t i = 0; i < repeats; ++i) tasks.push_back(tasks[i]);

  const auto serial = run::run_sweep(tasks, {.threads = 1});
  const auto parallel = run::run_sweep(tasks, {.threads = 8});
  ASSERT_EQ(serial.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::string a = serialize_result(tasks[i], serial[i]);
    const std::string b = serialize_result(tasks[i], parallel[i]);
    EXPECT_EQ(a, b) << "thread-count divergence: " << describe(tasks[i]);
    if (i >= repeats) {
      EXPECT_EQ(a, serialize_result(tasks[i], serial[i - repeats]))
          << "repeat divergence: " << describe(tasks[i]);
    }
  }
  for (std::size_t i = 0; i < repeats; ++i) {
    SessionConfig plain = tasks[i];
    plain.audit = false;
    EXPECT_EQ(serialize(StreamingSession(plain).run()),
              serialize_result(tasks[i], serial[i]))
        << "session/sweep divergence: " << describe(tasks[i]);
  }
}

TEST(SchemeDifferential, DistinctSeedsChangeRandomizedOverlaysOnly) {
  for (const scheme::Descriptor& desc : scheme::all()) {
    const bool randomized = desc.id == Scheme::kRandomRegular ||
                            desc.id == Scheme::kDynamicTrees;
    std::vector<std::string> reports;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      SessionConfig cfg{.scheme = desc.id,
                        .n = desc.caps.degree_sweep ? NodeKey{30} : NodeKey{25},
                        .d = desc.caps.degree_sweep ? 2 : 1};
      cfg.seed = seed;
      reports.push_back(serialize(StreamingSession(cfg).run()));
    }
    if (randomized) {
      // Different seeds must draw different overlays; demanding that at
      // least one of three reports differs keeps the assertion robust to a
      // coincidental delay tie between two draws.
      EXPECT_FALSE(reports[0] == reports[1] && reports[1] == reports[2])
          << desc.name << ": seed is dead";
    } else {
      EXPECT_EQ(reports[0], reports[1]) << desc.name;
      EXPECT_EQ(reports[1], reports[2]) << desc.name;
    }
  }
}

TEST(SchemeDifferential, InvariantCellsAreAuditCleanAndAuditInvisible) {
  // The randomized schemes' stand-in for the golden grid: every invariant
  // cell runs clean under the auditor and the audited report is
  // byte-identical to the unaudited one.
  for (const ParityCell& cell : randomized_invariant_cells()) {
    SessionConfig plain = cell.cfg;
    plain.audit = false;
    SessionConfig audited = cell.cfg;
    audited.audit = true;
    std::string a;
    std::string b;
    if (cell.cfg.loss.model != loss::ErasureKind::kNone) {
      a = serialize(StreamingSession(plain).run_lossy());
      ASSERT_NO_THROW(b = serialize(StreamingSession(audited).run_lossy()))
          << cell.id;
    } else {
      a = serialize(StreamingSession(plain).run());
      ASSERT_NO_THROW(b = serialize(StreamingSession(audited).run()))
          << cell.id;
    }
    EXPECT_EQ(a, b) << "auditor perturbed the run: " << cell.id;
  }
}

TEST(SchemeDifferential, EverySchemeHoldsItsEnvelopeOverTheSeedGrid) {
  // (N, d, seed) for every scheme; (clusters, T_c, seed) on top for the
  // multicluster-capable ones. All audited: the InvariantAuditor rethrows
  // any capacity/pacing/envelope violation through run_sweep.
  std::vector<SessionConfig> tasks;
  for (const scheme::Descriptor& desc : scheme::all()) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      for (const NodeKey n : desc.caps.degree_sweep
                                 ? std::vector<NodeKey>{14, 30, 64}
                                 : std::vector<NodeKey>{7, 25, 63}) {
        for (const int d : desc.caps.degree_sweep ? std::vector<int>{2, 3}
                                                  : std::vector<int>{1}) {
          SessionConfig cfg{.scheme = desc.id, .n = n, .d = d, .audit = true};
          cfg.seed = seed;
          tasks.push_back(cfg);
        }
      }
      if (desc.caps.multicluster) {
        for (const sim::Slot t_c : {2, 8}) {
          SessionConfig cfg{.scheme = desc.id,
                            .n = desc.caps.degree_sweep ? NodeKey{10}
                                                        : NodeKey{7},
                            .d = desc.caps.degree_sweep ? 2 : 1,
                            .clusters = 3,
                            .big_d = 3,
                            .t_c = t_c,
                            .audit = true};
          cfg.seed = seed;
          tasks.push_back(cfg);
        }
      }
    }
  }
  const auto results = run::run_sweep(tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].error) << describe(tasks[i]);
  }
}

TEST(SchemeDifferential, RandomRegularDelayTracksTheLogEnvelope) {
  // The Kim-Srikant claim, checked as N doubles: measured worst delay stays
  // within rrd::delay_bound — O(log N) — at every seed, so delay growth per
  // doubling is bounded by a constant while N grows 16x.
  for (const NodeKey n : {8, 16, 32, 64, 128}) {
    for (const int d : {2, 3}) {
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        SessionConfig cfg{.scheme = Scheme::kRandomRegular, .n = n, .d = d};
        cfg.seed = seed;
        const QosReport r = StreamingSession(cfg).run();
        const sim::Slot bound = rrd::delay_bound(n, d);
        EXPECT_LE(r.worst_delay, bound) << describe(cfg);
        EXPECT_LE(r.max_buffer, bound + 1) << describe(cfg);
        EXPECT_GE(r.worst_delay, 1) << describe(cfg);
      }
    }
  }
}

TEST(SchemeDifferential, DynamicForestNeverWorseThanStaticTreesAfterChurn) {
  // Zhu-Hajek vs the paper's static forest: drive a random join/leave mix,
  // rebalance to a fixed point, and compare the structure-derived schedule
  // bound against multitree::worst_delay_bound for the same live population.
  // Emergency source children can legitimately persist when the live count
  // sits at the seat-feasibility boundary (live ~ d * (internals + 1)); each
  // one adds at most one serve rank, hence the additive term.
  for (const int d : {2, 3}) {
    for (const NodeKey n : {14, 30, 64}) {
      for (const std::uint64_t seed : {1u, 2u, 3u}) {
        dyntree::DynamicForest forest(d, seed);
        std::vector<NodeKey> live;
        for (NodeKey i = 0; i < n; ++i) live.push_back(forest.join());
        forest.rebalance();

        util::Prng churn(seed * 99 + 1);
        for (int e = 0; e < 2 * n; ++e) {
          if (live.size() > 2 && churn.chance(0.5)) {
            const auto i = static_cast<std::size_t>(churn.below(live.size()));
            forest.leave(live[i]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          } else {
            live.push_back(forest.join());
          }
        }
        int rounds = 0;
        while (forest.rebalance() > 0 && ++rounds < 64) {
        }
        ASSERT_LT(rounds, 64) << "rebalance did not settle";

        const sim::Slot churned = dyntree::schedule_bound(forest);
        const sim::Slot fixed =
            multitree::worst_delay_bound(forest.peers(), d);
        EXPECT_LE(churned,
                  fixed + 2 * d + forest.emergency_children())
            << "d=" << d << " n=" << n << " seed=" << seed
            << " live=" << forest.peers();
        // The churn machinery actually engaged.
        EXPECT_GT(forest.stats().leaves, 0);
        EXPECT_GT(forest.stats().reattach_moves, 0);
      }
    }
  }
}

}  // namespace
}  // namespace streamcast::core
