// Dynamic multi-tree forest (src/dyntree/*): structural invariants under
// join/leave/rebalance, the promote-swap depth guarantee, and the churn
// edge cases — unique-parent departure, joins while the stream is live, and
// zero-duration memberships.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/dyntree/forest.hpp"
#include "src/dyntree/protocol.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/util/prng.hpp"

namespace streamcast::dyntree {
namespace {

/// Full structural invariant check: every live peer attached in every tree,
/// internal in exactly one, nobody over seat capacity (source overflow only
/// via the counted emergency path), and parent/child links consistent.
void expect_valid(const DynamicForest& f, const char* where) {
  const int d = f.d();
  int emergencies = 0;
  for (int k = 0; k < d; ++k) {
    for (NodeKey key = 0; key < f.key_end(); ++key) {
      const bool alive = key == 0 || f.live(key);
      for (const NodeKey child : f.children(k, key)) {
        EXPECT_TRUE(f.live(child)) << where << ": dead child";
        EXPECT_EQ(f.parent(k, child), key) << where << ": link mismatch";
      }
      if (!alive) {
        EXPECT_TRUE(f.children(k, key).empty()) << where << ": dead parent";
        continue;
      }
      const int cap = key == 0 ? d : (f.internal_tree(key) == k ? d : 0);
      const int kids = static_cast<int>(f.children(k, key).size());
      if (key == 0) {
        emergencies += std::max(0, kids - cap);
      } else {
        EXPECT_LE(kids, cap) << where << ": tree " << k << " node " << key;
      }
    }
    for (NodeKey key = 1; key < f.key_end(); ++key) {
      if (!f.live(key)) continue;
      EXPECT_NE(f.parent(k, key), sim::kNoNode)
          << where << ": detached live peer " << key << " in tree " << k;
      EXPECT_GE(f.internal_tree(key), 0) << where;
      EXPECT_LT(f.internal_tree(key), d) << where;
    }
  }
  EXPECT_EQ(emergencies, f.emergency_children()) << where;
}

TEST(DynamicForest, JoinsKeepEveryInvariantAndLogDepth) {
  for (const int d : {2, 3}) {
    DynamicForest f(d, 0x5eed);
    for (int i = 0; i < 64; ++i) f.join();
    f.rebalance();
    expect_valid(f, "after 64 joins");
    EXPECT_EQ(f.peers(), 64);
    // Promote swaps are what keeps the interior shallow; without them the
    // interior chains and height is ~N/d instead of ~log N.
    EXPECT_GT(f.stats().promote_swaps, 0);
    for (int k = 0; k < d; ++k) {
      EXPECT_LE(f.height(k), 12) << "tree " << k << " degenerated";
    }
  }
}

TEST(DynamicForest, SameSeedSameForestDistinctSeedsDiffer) {
  const auto build = [](std::uint64_t seed) {
    DynamicForest f(3, seed);
    for (int i = 0; i < 40; ++i) f.join();
    f.rebalance();
    return f;
  };
  const DynamicForest a = build(9);
  const DynamicForest b = build(9);
  const DynamicForest c = build(10);
  bool differ = false;
  for (NodeKey key = 1; key < a.key_end(); ++key) {
    EXPECT_EQ(a.internal_tree(key), b.internal_tree(key));
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(a.parent(k, key), b.parent(k, key));
      differ = differ || a.parent(k, key) != c.parent(k, key);
    }
    differ = differ || a.internal_tree(key) != c.internal_tree(key);
  }
  EXPECT_TRUE(differ) << "seed is dead";
}

TEST(DynamicForest, UniqueParentInEveryTreeLeaveReseatsAllOrphans) {
  // Edge case: with exactly one peer, that peer is the unique non-source
  // parent candidate in every tree. Fill its seats, then remove it — every
  // orphan in every tree must be re-seated (emergency path allowed), no
  // dangling parents.
  DynamicForest f(2, 1);
  const NodeKey hub = f.join();
  std::vector<NodeKey> rest;
  for (int i = 0; i < 6; ++i) rest.push_back(f.join());
  expect_valid(f, "before hub leave");
  const bool was_parent = [&] {
    for (int k = 0; k < 2; ++k) {
      if (!f.children(k, hub).empty()) return true;
    }
    return false;
  }();
  EXPECT_TRUE(was_parent) << "test setup: hub never became a parent";

  f.leave(hub);
  expect_valid(f, "after hub leave");
  EXPECT_FALSE(f.live(hub));
  EXPECT_EQ(f.peers(), 6);
  EXPECT_GT(f.stats().reattach_moves, 0);
  f.rebalance();
  expect_valid(f, "after rebalance");
  // Keys are permanent: the departed key is never reissued.
  EXPECT_EQ(f.join(), hub + static_cast<NodeKey>(rest.size()) + 1);
}

TEST(DynamicForest, LeaveOfUnknownOrDeadPeerThrows) {
  DynamicForest f(2, 1);
  const NodeKey p = f.join();
  EXPECT_THROW(f.leave(0), std::invalid_argument);
  EXPECT_THROW(f.leave(99), std::invalid_argument);
  f.leave(p);
  EXPECT_THROW(f.leave(p), std::invalid_argument);
}

TEST(DynamicForest, RandomChurnSettlesToValidForest) {
  DynamicForest f(3, 4);
  util::Prng rng(77);
  std::vector<NodeKey> live;
  for (int i = 0; i < 30; ++i) live.push_back(f.join());
  for (int e = 0; e < 200; ++e) {
    if (live.size() > 2 && rng.chance(0.5)) {
      const auto i = static_cast<std::size_t>(rng.below(live.size()));
      f.leave(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      live.push_back(f.join());
    }
    if (e % 16 == 0) f.rebalance();
  }
  while (f.rebalance() > 0) {
  }
  expect_valid(f, "after 200 churn events");
  EXPECT_EQ(f.peers(), static_cast<NodeKey>(live.size()));
}

/// Streams the dynamic protocol with engine capacity for `capacity` keys.
struct LiveRun {
  net::UniformCluster topo;
  DynamicTreesProtocol proto;
  sim::Engine engine;
  LiveRun(int d, std::uint64_t seed, NodeKey capacity)
      : topo(capacity, d, 1, d),
        proto(DynamicForest(d, seed)),
        engine(topo, proto) {}
};

/// Newest packet id a tracker has seen, or -1.
PacketId newest(const loss::SequenceTracker& holds) {
  PacketId top = holds.gap_free_prefix() - 1;
  for (const PacketId p : holds.ahead()) top = std::max(top, p);
  return top;
}

TEST(DynamicTreesProtocol, JoinMidStreamEntersAtLiveEdgeWithoutBackfill) {
  // Satellite edge case: a join while the stream is in full swing (the
  // analogue of joining inside a backbone T_c epoch — the overlay is
  // mid-distribution, not at a quiet boundary). The joiner must converge to
  // the live edge; established peers must not regress.
  LiveRun run(2, 5, 40);
  std::vector<NodeKey> peers;
  for (int i = 0; i < 10; ++i) peers.push_back(run.proto.join());
  run.engine.run_until(50);

  const NodeKey joiner = run.proto.join();
  const sim::Slot seated = run.engine.now();
  run.engine.run_until(seated + 60);

  // No backfill: nothing before the seating slot is guaranteed (the parent
  // queues only post-seating deliveries), but the joiner must reach the
  // live edge of its seating moment.
  EXPECT_GE(newest(run.proto.holdings(joiner)), run.proto.live_edge(seated))
      << "joiner never reached the live edge";
  // Established peers keep flowing; a peer displaced by the joiner's
  // promote-swap may carry a gap (honest hiccup), but its newest packet
  // still tracks the stream.
  for (const NodeKey p : peers) {
    EXPECT_GE(newest(run.proto.holdings(p)), 80)
        << "established peer " << p << " starved after the join";
  }
}

TEST(DynamicTreesProtocol, ZeroDurationMembershipIsHarmless) {
  // Satellite edge case: join and leave within the same slot — the peer
  // never receives anything, and the stream must not notice.
  LiveRun run(2, 6, 40);
  std::vector<NodeKey> peers;
  for (int i = 0; i < 8; ++i) peers.push_back(run.proto.join());
  run.engine.run_until(30);

  const NodeKey ghost = run.proto.join();
  run.proto.leave(ghost);
  expect_valid(run.proto.forest(), "after zero-duration membership");
  run.engine.run_until(90);

  EXPECT_EQ(run.proto.holdings(ghost).gap_free_prefix(), 0);
  EXPECT_TRUE(run.proto.holdings(ghost).ahead().empty());
  for (const NodeKey p : peers) {
    EXPECT_GE(newest(run.proto.holdings(p)), 60)
        << "peer " << p << " stalled on the ghost membership";
  }
}

TEST(DynamicTreesProtocol, LeaveMidStreamKeepsSurvivorsFlowing) {
  LiveRun run(3, 8, 40);
  std::vector<NodeKey> peers;
  for (int i = 0; i < 12; ++i) peers.push_back(run.proto.join());
  run.engine.run_until(40);

  // Remove a peer that is internal somewhere (they all are) and rebalance,
  // mid-stream.
  run.proto.leave(peers[3]);
  run.proto.forest().rebalance();
  expect_valid(run.proto.forest(), "after mid-stream leave");
  const sim::Slot resumed = run.engine.now();
  run.engine.run_until(resumed + 80);

  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (i == 3) continue;
    EXPECT_GE(newest(run.proto.holdings(peers[i])), resumed + 40)
        << "survivor " << peers[i] << " stalled after the leave";
  }
}

TEST(DynamicForest, ScheduleBoundDominatesFreshForestHeightModel) {
  // The DP bound must be at least the naive per-hop cost (every hop >= 1
  // beyond the source round-robin) and monotone in population growth for a
  // fixed seed.
  DynamicForest f(2, 3);
  sim::Slot prev = 0;
  for (int i = 0; i < 50; ++i) {
    f.join();
    if (i % 10 == 9) {
      f.rebalance();
      const sim::Slot bound = schedule_bound(f);
      EXPECT_GE(bound, prev > 0 ? prev - 2 : 0)
          << "bound collapsed after growth to " << f.peers();
      EXPECT_GE(bound, 3);
      prev = bound;
    }
  }
}

}  // namespace
}  // namespace streamcast::dyntree
