// Scheme registry parity + capability suite (ISSUE 5 tentpole lock).
//
// The heart is the golden parity grid: every Scheme x stream mode x
// {lossless, lossy} cell from scheme_parity_cells.hpp, run through the
// SchemeRegistry + RunPipeline and compared byte-for-byte against the
// serialized reports captured from the pre-refactor 18-arm dispatch
// (scheme_parity_golden.inc). The grid executes through run::run_sweep so
// the same assertions double as TSan coverage for the parallel runner.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/core/session.hpp"
#include "src/run/sweep.hpp"
#include "src/scheme/registry.hpp"
#include "src/sim/trace.hpp"
#include "tests/scheme_parity_cells.hpp"
#include "tests/scheme_parity_golden.inc"

namespace streamcast::core {
namespace {

/// Parses the golden capture into cell-id -> serialized report text.
std::map<std::string, std::string> parse_golden() {
  std::map<std::string, std::string> golden;
  std::istringstream in(kSchemeParityGolden);
  std::string line;
  std::string id;
  std::string body;
  auto flush = [&] {
    if (!id.empty()) golden[id] = body;
    body.clear();
  };
  while (std::getline(in, line)) {
    if (line.rfind("=== ", 0) == 0) {
      flush();
      id = line.substr(4);
    } else if (!line.empty()) {
      if (!body.empty()) body += '\n';
      body += line;
    }
  }
  flush();
  return golden;
}

std::string run_cell(const SessionConfig& cfg) {
  StreamingSession session(cfg);
  if (cfg.loss.model != loss::ErasureKind::kNone) {
    return serialize(session.run_lossy());
  }
  return serialize(session.run());
}

TEST(SchemeParity, EveryCellMatchesPreRefactorGolden) {
  const auto golden = parse_golden();
  const auto cells = parity_cells();
  ASSERT_EQ(golden.size(), cells.size())
      << "cell list and golden capture drifted";

  std::vector<SessionConfig> tasks;
  tasks.reserve(cells.size());
  for (const ParityCell& cell : cells) tasks.push_back(cell.cfg);
  const auto results = run::run_sweep(tasks);
  run::require_all(results);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ParityCell& cell = cells[i];
    const auto it = golden.find(cell.id);
    ASSERT_NE(it, golden.end()) << "no golden for cell: " << cell.id;
    std::string got;
    if (cell.cfg.loss.model != loss::ErasureKind::kNone) {
      got = serialize(LossRunResult{results[i].qos, results[i].loss, {}});
    } else {
      got = serialize(results[i].qos);
    }
    EXPECT_EQ(got, it->second) << "parity break in cell: " << cell.id;
  }
}

TEST(SchemeParity, SerialSessionMatchesSweepPath) {
  // One lossless and one lossy cell re-run through the plain session API:
  // run_sweep and StreamingSession must be the same pipeline.
  const auto golden = parse_golden();
  for (const ParityCell& cell : parity_cells()) {
    if (cell.id == "hypercube mode=pre loss=none" ||
        cell.id == "chain mode=pre loss=ge") {
      EXPECT_EQ(run_cell(cell.cfg), golden.at(cell.id)) << cell.id;
    }
  }
}

TEST(SchemeRegistry, EnumeratesEverySchemeInOrder) {
  const auto schemes = scheme::all();
  ASSERT_EQ(schemes.size(), 8u);
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(schemes[i].id), i);
    EXPECT_EQ(&scheme::descriptor(schemes[i].id), &schemes[i]);
  }
}

TEST(SchemeRegistry, ParseSchemeIsExactInverseOfSchemeName) {
  for (const scheme::Descriptor& desc : scheme::all()) {
    EXPECT_EQ(scheme_name(desc.id), desc.name);
    EXPECT_EQ(parse_scheme(desc.name), desc.id);
    EXPECT_EQ(parse_scheme(scheme_name(desc.id)), desc.id);
    // The single-cluster label IS the name, so it round-trips too.
    EXPECT_EQ(parse_scheme(scheme_label(desc.id)), desc.id);
  }
  EXPECT_THROW((void)parse_scheme("multitree"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheme(""), std::invalid_argument);
  EXPECT_THROW((void)parse_scheme("hypercube/"), std::invalid_argument);
}

TEST(SchemeRegistry, ParseSchemeRejectsMalformedLabels) {
  // Multi-cluster report labels ("<name> xK clusters") are display strings,
  // not names: parse_scheme must reject every decorated or mangled form for
  // every registered scheme, not silently strip the suffix.
  for (const scheme::Descriptor& desc : scheme::all()) {
    const std::string name = desc.name;
    for (const std::string& bad : {
             scheme_label(desc.id, 2),    // "name x2 clusters"
             scheme_label(desc.id, 999),  // huge cluster count
             name + " x clusters",        // missing count
             name + " x2",                // missing the word
             name + " x2 cluster",        // singular
             name + "  x2 clusters",      // doubled space
             name + " X2 clusters",       // wrong case
             " " + name,                  // leading space
             name + " ",                  // trailing space
             name + "x2 clusters",        // no separator
         }) {
      EXPECT_THROW((void)parse_scheme(bad), std::invalid_argument)
          << "accepted: '" << bad << "'";
    }
  }
}

TEST(SchemeRegistry, SchemeLabelCoversBothReportForms) {
  EXPECT_EQ(scheme_label(Scheme::kChain), "chain");
  EXPECT_EQ(scheme_label(Scheme::kMultiTreeGreedy, 1), "multi-tree/greedy");
  EXPECT_EQ(scheme_label(Scheme::kMultiTreeGreedy, 3),
            "multi-tree/greedy x3 clusters");
  EXPECT_EQ(scheme_label(Scheme::kHypercube, 4), "hypercube x4 clusters");
}

TEST(SchemeRegistry, CapabilitiesMatchLegacyDispatch) {
  // Multi-cluster: the legacy switch accepted exactly greedy and hypercube.
  for (const scheme::Descriptor& desc : scheme::all()) {
    const bool legacy_ok = desc.id == Scheme::kMultiTreeGreedy ||
                           desc.id == Scheme::kHypercube;
    EXPECT_EQ(desc.caps.multicluster, legacy_ok) << desc.name;
    SessionConfig cfg{.scheme = desc.id, .n = 8, .d = 2, .clusters = 2,
                      .big_d = 3, .t_c = 4};
    if (legacy_ok) {
      EXPECT_NO_THROW(StreamingSession{cfg}) << desc.name;
    } else {
      EXPECT_THROW(StreamingSession{cfg}, std::invalid_argument)
          << desc.name;
    }
  }
  // Live stream modes and schedule memoization: multi-tree only.
  for (const scheme::Descriptor& desc : scheme::all()) {
    const bool is_multitree = desc.id == Scheme::kMultiTreeStructured ||
                              desc.id == Scheme::kMultiTreeGreedy;
    EXPECT_EQ(desc.caps.live_modes, is_multitree) << desc.name;
    EXPECT_EQ(desc.caps.memoized_schedule, is_multitree) << desc.name;
  }
  // Dense links (newest-only forwarders): the legacy lossy path set this
  // for chain and single-tree; demand-driven gap sweeping for hypercubes.
  EXPECT_TRUE(scheme::descriptor(Scheme::kChain).caps.dense_links);
  EXPECT_TRUE(scheme::descriptor(Scheme::kSingleTree).caps.dense_links);
  EXPECT_FALSE(scheme::descriptor(Scheme::kMultiTreeGreedy).caps.dense_links);
  EXPECT_TRUE(scheme::descriptor(Scheme::kHypercube).caps.demand_driven);
  EXPECT_TRUE(
      scheme::descriptor(Scheme::kHypercubeGrouped).caps.demand_driven);
  EXPECT_FALSE(scheme::descriptor(Scheme::kChain).caps.demand_driven);
  // Every current scheme runs under the recovery layer.
  for (const scheme::Descriptor& desc : scheme::all()) {
    EXPECT_TRUE(desc.caps.lossy_links) << desc.name;
  }
  // Churn adaptation: exactly the Zhu-Hajek dynamic forest.
  for (const scheme::Descriptor& desc : scheme::all()) {
    EXPECT_EQ(desc.caps.churn, desc.id == Scheme::kDynamicTrees)
        << desc.name;
  }
}

TEST(SchemeRegistry, LiveModeCellsDifferOnlyForLiveSchemes) {
  // The mode flag must change the schedule exactly when caps.live_modes:
  // for everyone else the pre/live cells lock onto one golden.
  for (const scheme::Descriptor& desc : scheme::all()) {
    const NodeKey n = desc.caps.degree_sweep ? NodeKey{14} : NodeKey{9};
    const int d = desc.caps.degree_sweep ? 2 : 1;
    SessionConfig pre{.scheme = desc.id, .n = n, .d = d,
                      .mode = multitree::StreamMode::kPreRecorded};
    SessionConfig live = pre;
    live.mode = multitree::StreamMode::kLivePipelined;
    const auto a = serialize(StreamingSession(pre).run());
    const auto b = serialize(StreamingSession(live).run());
    if (desc.caps.live_modes) {
      EXPECT_NE(a, b) << desc.name;
    } else {
      EXPECT_EQ(a, b) << desc.name;
    }
  }
}

TEST(SchemeRegistry, AuditedRunsAreByteIdenticalToUnaudited) {
  // The auditor is an observer: switching it on must not perturb a single
  // byte of the report, on the single-cluster, lossy, and multi-cluster
  // paths alike (audited-node selection included).
  std::vector<SessionConfig> cfgs;
  cfgs.push_back(SessionConfig{.scheme = Scheme::kMultiTreeGreedy, .n = 21,
                               .d = 2});
  cfgs.push_back(SessionConfig{.scheme = Scheme::kMultiTreeGreedy, .n = 8,
                               .d = 2, .clusters = 3, .big_d = 3, .t_c = 4});
  cfgs.push_back(SessionConfig{.scheme = Scheme::kHypercube, .n = 7, .d = 1,
                               .clusters = 4, .big_d = 3, .t_c = 5});
  SessionConfig lossy{.scheme = Scheme::kHypercube, .n = 21, .d = 1};
  lossy.loss.model = loss::ErasureKind::kBernoulli;
  lossy.loss.rate = 0.08;
  lossy.loss.seed = 0xd00d;
  cfgs.push_back(lossy);
  for (SessionConfig cfg : cfgs) {
    cfg.audit = false;
    SessionConfig audited = cfg;
    audited.audit = true;
    std::string plain;
    std::string checked;
    if (cfg.loss.model != loss::ErasureKind::kNone) {
      plain = serialize(StreamingSession(cfg).run_lossy());
      checked = serialize(StreamingSession(audited).run_lossy());
    } else {
      plain = serialize(StreamingSession(cfg).run());
      checked = serialize(StreamingSession(audited).run());
    }
    EXPECT_EQ(plain, checked) << scheme_label(cfg.scheme, cfg.clusters);
  }
}

TEST(RunPipeline, DirectUseMatchesSessionAndCarriesTrace) {
  // The pipeline is usable standalone: build an overlay from the registry,
  // attach a caller-owned trace, and reproduce the session's report.
  const SessionConfig cfg{.scheme = Scheme::kChain, .n = 12, .d = 1};
  scheme::Overlay overlay = scheme::descriptor(cfg.scheme).build(cfg);

  sim::Trace trace;
  ObserverSpec spec;
  spec.window = overlay.window;
  spec.node_span = cfg.n + 1;
  spec.trace = &trace;

  RunPipeline pipeline(*overlay.topology, *overlay.protocol, spec);
  pipeline.run(overlay.window + overlay.slack);

  std::vector<NodeKey> receivers;
  for (NodeKey x = 1; x <= cfg.n; ++x) receivers.push_back(x);
  const QosReport direct =
      pipeline.aggregate({.label = scheme_label(cfg.scheme),
                          .report_n = cfg.n,
                          .d = cfg.d,
                          .receivers = receivers});

  SessionConfig plain = cfg;
  plain.audit = false;
  EXPECT_EQ(serialize(direct), serialize(StreamingSession(plain).run()));
  EXPECT_FALSE(trace.all().empty());
  EXPECT_EQ(trace.all().size(), direct.transmissions);
}

TEST(RunPipeline, LossSummaryRequiresLossyWiring) {
  const SessionConfig cfg{.scheme = Scheme::kChain, .n = 4, .d = 1};
  scheme::Overlay overlay = scheme::descriptor(cfg.scheme).build(cfg);
  ObserverSpec spec;
  spec.window = overlay.window;
  spec.node_span = cfg.n + 1;
  RunPipeline pipeline(*overlay.topology, *overlay.protocol, spec);
  pipeline.run(overlay.window + overlay.slack);
  EXPECT_THROW((void)pipeline.loss_summary(cfg.loss, 1, cfg.n, 0),
               std::logic_error);
}

}  // namespace
}  // namespace streamcast::core
