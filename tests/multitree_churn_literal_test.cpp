// Machine-checked counterexample for DESIGN.md deviation 2: the paper's
// literal deletion restores tail placement (Step 2) but can break the mod-d
// congruence property the collision-free schedule depends on. Step 1 alone
// is always safe.
#include <gtest/gtest.h>

#include "src/multitree/churn_literal.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/structured.hpp"

namespace streamcast::multitree {
namespace {

TEST(PaperLiteralDelete, StepOneAloneIsAlwaysResidueSafe) {
  // Non-boundary N (step 2 never runs): every deletion keeps survivors
  // congruent — the two swapped nodes exchange entire position sets.
  for (const int d : {2, 3, 4}) {
    for (const NodeKey n : {14, 20, 27, 44}) {
      if ((n - 1) % d == 0) continue;  // keep to non-boundary sizes
      const Forest f = build_greedy(n, d);
      for (NodeKey victim = 1; victim <= n; ++victim) {
        const auto out = paper_literal_delete(f, victim);
        EXPECT_FALSE(out.boundary);
        EXPECT_TRUE(survivors_congruent(out.forest, victim))
            << "n=" << n << " d=" << d << " victim=" << victim;
        EXPECT_LE(out.swaps, d);  // paper: step 1 costs at most d
      }
    }
  }
}

TEST(PaperLiteralDelete, StepTwoBreaksCongruenceSomewhere) {
  // Boundary sizes (d | N-1): scan for concrete witnesses where the
  // paper's restore-property swaps leave two trees delivering to the same
  // node in the same slot residue — the failure our re-derivation path
  // avoids.
  int witnesses = 0;
  int safe = 0;
  std::string first_witness;
  for (const int d : {2, 3, 4}) {
    for (NodeKey n = 2 * d + 1; n <= 80; n += d) {
      ASSERT_EQ((n - 1) % d, 0);
      for (const bool greedy : {true, false}) {
        const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
        for (NodeKey victim = 1; victim <= n; ++victim) {
          const auto out = paper_literal_delete(f, victim);
          ASSERT_TRUE(out.boundary);
          if (survivors_congruent(out.forest, victim)) {
            ++safe;
          } else {
            ++witnesses;
            if (first_witness.empty()) {
              first_witness = "N=" + std::to_string(n) +
                              " d=" + std::to_string(d) + " victim=" +
                              std::to_string(victim) +
                              (greedy ? " (greedy)" : " (structured)");
            }
          }
          // The paper's swap accounting still holds: at most d + d^2.
          EXPECT_LE(out.swaps, d + d * d);
        }
      }
    }
  }
  // The deviation is real: concrete witnesses exist. (In fact, on this
  // padded realization every scanned boundary deletion broke congruence —
  // the restore-property swaps are not residue-aware at all.)
  EXPECT_GT(witnesses, 0) << "expected at least one congruence violation";
  EXPECT_GT(witnesses, safe);
  RecordProperty("first_witness", first_witness);
  RecordProperty("witnesses", static_cast<int>(witnesses));
  RecordProperty("safe", static_cast<int>(safe));
}

TEST(PaperLiteralDelete, RejectsBadVictim) {
  const Forest f = build_greedy(10, 2);
  EXPECT_THROW(paper_literal_delete(f, 0), std::invalid_argument);
  EXPECT_THROW(paper_literal_delete(f, 11), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::multitree
