// Analysis tests: Theorem 2's height formula against the structural height,
// Theorem 3's lower bound against measured averages, the §2.3 degree
// optimization, and completeness detection.
#include <gtest/gtest.h>

#include <cmath>

#include "src/multitree/analysis.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/structured.hpp"
#include "src/util/ints.hpp"

namespace streamcast::multitree {
namespace {

TEST(TreeHeight, MatchesKnownValues) {
  // d = 2: N = 2 -> h=1; N = 6 -> h=2; N = 14 -> h=3; N = 15 -> h=4.
  EXPECT_EQ(tree_height(1, 2), 1);
  EXPECT_EQ(tree_height(2, 2), 1);
  EXPECT_EQ(tree_height(3, 2), 2);
  EXPECT_EQ(tree_height(6, 2), 2);
  EXPECT_EQ(tree_height(7, 2), 3);
  EXPECT_EQ(tree_height(14, 2), 3);
  EXPECT_EQ(tree_height(15, 2), 4);
  // d = 3: N = 12 -> h=2; N = 13 -> h=3; N = 39 -> h=3.
  EXPECT_EQ(tree_height(12, 3), 2);
  EXPECT_EQ(tree_height(13, 3), 3);
  EXPECT_EQ(tree_height(39, 3), 3);
  EXPECT_EQ(tree_height(40, 3), 4);
}

TEST(TreeHeight, FormulaMatchesStructuralHeightOnGrid) {
  for (int d = 2; d <= 7; ++d) {
    for (NodeKey n = 1; n <= 400; ++n) {
      const Forest f = build_greedy(n, d);
      EXPECT_EQ(tree_height(n, d), f.height()) << "n=" << n << " d=" << d;
    }
  }
}

TEST(TreeHeight, ChainDegenerateCase) { EXPECT_EQ(tree_height(9, 1), 9); }

TEST(WorstDelayBound, IsHeightTimesDegree) {
  EXPECT_EQ(worst_delay_bound(12, 3), 6);
  EXPECT_EQ(worst_delay_bound(13, 3), 9);
  EXPECT_EQ(worst_delay_bound(14, 2), 6);
}

TEST(WorstDelayBound, TightForCompleteTrees) {
  // Theorem 2's Observation 1: it takes h*d slots (slot indices 0..h*d-1) to
  // transmit packet 0 to the node in the last position of T_0. Under our
  // start-slot-index convention (DESIGN.md §3) the worst delay of a complete
  // forest is therefore exactly h*d - 1, one below the duration bound.
  for (const int d : {2, 3, 4}) {
    for (int h = 1; h <= 4; ++h) {
      const auto n = static_cast<NodeKey>(util::complete_dary_size(d, h));
      ASSERT_TRUE(is_complete(n, d));
      const Forest f = build_greedy(n, d);
      EXPECT_EQ(closed_form_worst_delay(f), worst_delay_bound(n, d) - 1)
          << "d=" << d << " h=" << h;
    }
  }
}

TEST(WorstDelayBound, CanBeStrictlyLooseForIncompleteTrees) {
  // "For general values of N ... it is possible for T to be strictly less
  // than h*d." Find a witness below even the tight complete-tree value.
  bool witness = false;
  for (NodeKey n = 2; n <= 200; ++n) {
    const Forest f = build_greedy(n, 3);
    if (closed_form_worst_delay(f) < worst_delay_bound(n, 3) - 1) {
      witness = true;
    }
  }
  EXPECT_TRUE(witness);
}

TEST(AverageDelayLowerBound, HoldsForCompleteTreesBothConstructions) {
  // Theorem 3 is stated under the complete-tree assumption.
  for (const int d : {2, 3, 4}) {
    for (int h = 1; h <= 4; ++h) {
      const auto n = static_cast<NodeKey>(util::complete_dary_size(d, h));
      for (const bool greedy : {false, true}) {
        const Forest f = greedy ? build_greedy(n, d) : build_structured(n, d);
        const double measured = closed_form_average_delay(f);
        EXPECT_GE(measured + 1e-9, average_delay_lower_bound(n, d))
            << "n=" << n << " d=" << d << " greedy=" << greedy;
      }
    }
  }
}

TEST(AverageDelayLowerBound, RejectsDegreeOne) {
  EXPECT_THROW(average_delay_lower_bound(10, 1), std::invalid_argument);
}

TEST(DelayObjective, MatchesPaperClosedForm) {
  // F(2) = 2 (log2 N - 1) and F(3) = 3 (log2 N / log2 3 - log3(3/2)).
  const double n = 1000;
  EXPECT_NEAR(delay_objective(1000, 2), 2 * (std::log2(n) - 1), 1e-9);
  EXPECT_NEAR(delay_objective(1000, 3),
              3 * (std::log2(n) / std::log2(3.0) -
                   std::log(1.5) / std::log(3.0)),
              1e-9);
}

TEST(OptimalDegree, AlwaysTwoOrThree) {
  // §2.3: "an optimal value of d should always be either 2 or 3."
  for (NodeKey n = 2; n <= 3000; ++n) {
    const int best = optimal_degree(n);
    EXPECT_TRUE(best == 2 || best == 3) << "n=" << n << " got " << best;
  }
  for (const NodeKey n : {10'000, 100'000, 1'000'000}) {
    const int best = optimal_degree(n);
    EXPECT_TRUE(best == 2 || best == 3) << "n=" << n;
  }
}

TEST(OptimalDegree, DegreeThreeWinsAsymptotically) {
  // "for sufficiently large N, degree 3 trees are optimal": the claim is
  // about the continuous approximation F(d) (the integer bound h(d)*d keeps
  // ceiling artifacts where 2 and 3 trade places — exactly why the paper
  // concludes d = 2 is reasonable in practice).
  for (const NodeKey n : {1'000, 10'000, 100'000, 1'000'000}) {
    EXPECT_LT(delay_objective(n, 3), delay_objective(n, 2)) << "n=" << n;
    for (const int d : {4, 5, 6, 8}) {
      EXPECT_LT(delay_objective(n, 3), delay_objective(n, d))
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(IsComplete, DetectsCompleteSizes) {
  EXPECT_TRUE(is_complete(2, 2));
  EXPECT_TRUE(is_complete(6, 2));
  EXPECT_TRUE(is_complete(14, 2));
  EXPECT_FALSE(is_complete(7, 2));
  EXPECT_TRUE(is_complete(12, 3));
  EXPECT_TRUE(is_complete(39, 3));
  EXPECT_FALSE(is_complete(15, 3));
  EXPECT_FALSE(is_complete(5, 1));
}

}  // namespace
}  // namespace streamcast::multitree
