#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/workload/churn_trace.hpp"

namespace streamcast::workload {
namespace {

TEST(ChurnTrace, DeterministicForASeed) {
  const TraceConfig cfg{.arrival_rate = 0.1,
                        .mean_lifetime = 200,
                        .horizon = 1000,
                        .initial_n = 20,
                        .seed = 99};
  EXPECT_EQ(generate_churn_trace(cfg), generate_churn_trace(cfg));
  TraceConfig other = cfg;
  other.seed = 100;
  EXPECT_NE(generate_churn_trace(cfg), generate_churn_trace(other));
}

TEST(ChurnTrace, SortedWithArrivalsFirst) {
  const auto trace = generate_churn_trace({.arrival_rate = 0.3,
                                           .mean_lifetime = 50,
                                           .horizon = 600,
                                           .initial_n = 10,
                                           .seed = 7});
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_LE(trace[i - 1].slot, trace[i].slot);
    if (trace[i - 1].slot == trace[i].slot) {
      // Never a departure before an arrival in the same slot.
      ASSERT_FALSE(!trace[i - 1].arrival && trace[i].arrival);
    }
  }
}

TEST(ChurnTrace, EveryDepartureFollowsItsArrival) {
  const auto trace = generate_churn_trace({.arrival_rate = 0.2,
                                           .mean_lifetime = 100,
                                           .horizon = 800,
                                           .initial_n = 5,
                                           .seed = 3});
  std::set<std::int64_t> present;
  for (std::int64_t p = 0; p < 5; ++p) present.insert(p);
  for (const auto& e : trace) {
    if (e.arrival) {
      ASSERT_TRUE(present.insert(e.peer).second) << "double arrival";
    } else {
      ASSERT_EQ(present.erase(e.peer), 1u) << "departure without arrival";
    }
  }
  EXPECT_EQ(static_cast<NodeKey>(present.size()),
            survivors({.initial_n = 5}, trace));
}

TEST(ChurnTrace, StatisticsMatchTheModel) {
  // Long trace: arrival count ~ rate * horizon; measured lifetimes of
  // departed peers ~ mean_lifetime (within loose stochastic tolerance).
  const TraceConfig cfg{.arrival_rate = 0.2,
                        .mean_lifetime = 300,
                        .horizon = 50'000,
                        .initial_n = 0,
                        .seed = 42};
  const auto trace = generate_churn_trace(cfg);
  std::int64_t arrivals = 0;
  std::map<std::int64_t, Slot> born;
  double lifetime_sum = 0;
  std::int64_t departures = 0;
  for (const auto& e : trace) {
    if (e.arrival) {
      ++arrivals;
      born[e.peer] = e.slot;
    } else {
      lifetime_sum += static_cast<double>(e.slot - born[e.peer]);
      ++departures;
    }
  }
  EXPECT_NEAR(static_cast<double>(arrivals),
              cfg.arrival_rate * static_cast<double>(cfg.horizon),
              0.05 * cfg.arrival_rate * static_cast<double>(cfg.horizon));
  ASSERT_GT(departures, 1000);
  EXPECT_NEAR(lifetime_sum / static_cast<double>(departures),
              cfg.mean_lifetime, 0.08 * cfg.mean_lifetime);
}

TEST(ChurnTrace, ZeroRateMeansOnlyInitialDepartures) {
  const auto trace = generate_churn_trace({.arrival_rate = 0,
                                           .mean_lifetime = 100,
                                           .horizon = 2000,
                                           .initial_n = 30,
                                           .seed = 1});
  for (const auto& e : trace) EXPECT_FALSE(e.arrival);
  EXPECT_LE(trace.size(), 30u);
}

TEST(ChurnTrace, RejectsBadConfig) {
  EXPECT_THROW(generate_churn_trace({.arrival_rate = -1}),
               std::invalid_argument);
  EXPECT_THROW(generate_churn_trace({.mean_lifetime = 0}),
               std::invalid_argument);
  EXPECT_THROW(generate_churn_trace({.horizon = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::workload
