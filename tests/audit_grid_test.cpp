// The audited grid sweep: every scheme, over an (N, d) grid — plus a
// (clusters, T_c) grid for the super-tree composition and lossy runs for the
// recovery path — executes under SessionConfig::audit = true, which attaches
// the InvariantAuditor and throws with a structured AuditReport if any of
// the paper's invariants (capacity, collision-freedom, T_c pacing,
// duplicate-freedom, Thm 2 / Prop 1-2 delay & buffer envelopes) breaks.
#include <gtest/gtest.h>

#include "src/core/streamcast.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;
using core::StreamingSession;

TEST(AuditGrid, MultiTreeSchemesHoldTheorem2Envelopes) {
  for (const Scheme scheme :
       {Scheme::kMultiTreeStructured, Scheme::kMultiTreeGreedy}) {
    for (const sim::NodeKey n : {5, 14, 40, 63}) {
      for (const int d : {2, 3, 4}) {
        SessionConfig cfg{.scheme = scheme, .n = n, .d = d, .audit = true};
        EXPECT_NO_THROW(StreamingSession(cfg).run())
            << core::scheme_name(scheme) << " N=" << n << " d=" << d;
      }
    }
  }
}

TEST(AuditGrid, MultiTreeLiveModesHoldShiftedEnvelopes) {
  for (const auto mode : {multitree::StreamMode::kLivePrebuffered,
                          multitree::StreamMode::kLivePipelined}) {
    for (const sim::NodeKey n : {13, 40}) {
      for (const int d : {2, 3}) {
        SessionConfig cfg{.scheme = Scheme::kMultiTreeGreedy,
                          .n = n,
                          .d = d,
                          .mode = mode,
                          .audit = true};
        EXPECT_NO_THROW(StreamingSession(cfg).run()) << "N=" << n
                                                     << " d=" << d;
      }
    }
  }
}

TEST(AuditGrid, HypercubeSchemesHoldConstantBufferEnvelope) {
  for (const sim::NodeKey n : {7, 25, 63, 127}) {
    SessionConfig cfg{.scheme = Scheme::kHypercube, .n = n, .d = 1,
                      .audit = true};
    EXPECT_NO_THROW(StreamingSession(cfg).run()) << "N=" << n;
  }
  for (const sim::NodeKey n : {24, 90}) {
    for (const int d : {2, 3}) {
      SessionConfig cfg{.scheme = Scheme::kHypercubeGrouped,
                        .n = n,
                        .d = d,
                        .audit = true};
      EXPECT_NO_THROW(StreamingSession(cfg).run()) << "N=" << n << " d=" << d;
    }
  }
}

TEST(AuditGrid, BaselinesHoldClosedFormEnvelopes) {
  for (const sim::NodeKey n : {5, 20, 50}) {
    SessionConfig chain{.scheme = Scheme::kChain, .n = n, .d = 1,
                        .audit = true};
    EXPECT_NO_THROW(StreamingSession(chain).run()) << "chain N=" << n;
    SessionConfig tree{.scheme = Scheme::kSingleTree, .n = n, .d = 2,
                       .audit = true};
    EXPECT_NO_THROW(StreamingSession(tree).run()) << "single-tree N=" << n;
  }
}

TEST(AuditGrid, SuperTreeCompositionHoldsUnderTcSweep) {
  for (const int clusters : {3, 6}) {
    for (const sim::Slot t_c : {2, 8, 16}) {
      SessionConfig mt{.scheme = Scheme::kMultiTreeGreedy,
                       .n = 10,
                       .d = 2,
                       .clusters = clusters,
                       .big_d = 3,
                       .t_c = t_c,
                       .audit = true};
      EXPECT_NO_THROW(StreamingSession(mt).run())
          << "multitree clusters=" << clusters << " T_c=" << t_c;
      SessionConfig hc{.scheme = Scheme::kHypercube,
                       .n = 7,
                       .d = 1,
                       .clusters = clusters,
                       .big_d = 3,
                       .t_c = t_c,
                       .audit = true};
      EXPECT_NO_THROW(StreamingSession(hc).run())
          << "hypercube clusters=" << clusters << " T_c=" << t_c;
    }
  }
}

TEST(AuditGrid, LossyRecoveryRunsStayWithinProvisionedInvariants) {
  for (const Scheme scheme : {Scheme::kMultiTreeGreedy, Scheme::kChain}) {
    for (const double rate : {0.0, 0.02, 0.1}) {
      SessionConfig cfg{.scheme = scheme, .n = 30, .d = 2, .audit = true};
      cfg.loss.model = loss::ErasureKind::kBernoulli;
      cfg.loss.rate = rate;
      ASSERT_NO_THROW({
        const auto result = StreamingSession(cfg).run_lossy();
        if (rate > 0) {
          EXPECT_GT(result.loss.drops, 0);
        }
      }) << core::scheme_name(scheme)
         << " p=" << rate;
    }
  }
  // FEC path: decoded packets never cross a link; the physical-stream audit
  // must still hold every capacity/pacing invariant.
  SessionConfig fec{.scheme = Scheme::kMultiTreeGreedy, .n = 30, .d = 2,
                    .audit = true};
  fec.loss.model = loss::ErasureKind::kBernoulli;
  fec.loss.rate = 0.05;
  fec.loss.recovery = loss::RecoveryMode::kFec;
  EXPECT_NO_THROW(StreamingSession(fec).run_lossy());
}

TEST(AuditGrid, AuditedRunMatchesUnauditedReport) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeGreedy, .n = 40, .d = 3};
  cfg.audit = false;
  const auto plain = StreamingSession(cfg).run();
  cfg.audit = true;
  const auto audited = StreamingSession(cfg).run();
  EXPECT_EQ(plain.worst_delay, audited.worst_delay);
  EXPECT_EQ(plain.max_buffer, audited.max_buffer);
  EXPECT_EQ(plain.transmissions, audited.transmissions);
}

}  // namespace
}  // namespace streamcast
