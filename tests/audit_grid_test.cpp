// The audited grid sweep: every scheme, over an (N, d) grid — plus a
// (clusters, T_c) grid for the super-tree composition and lossy runs for the
// recovery path — executes under SessionConfig::audit = true, which attaches
// the InvariantAuditor and throws with a structured AuditReport if any of
// the paper's invariants (capacity, collision-freedom, T_c pacing,
// duplicate-freedom, Thm 2 / Prop 1-2 delay & buffer envelopes) breaks.
//
// The grids run through run::run_sweep — the deterministic parallel sweep
// scheduler — both to cut wall-clock on multi-core CI and to keep the
// runner itself under audit coverage: every session here re-checks the full
// invariant set regardless of which worker thread it landed on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/streamcast.hpp"
#include "src/run/sweep.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;
using core::StreamingSession;

std::string describe(const SessionConfig& cfg) {
  std::string s = std::string(core::scheme_name(cfg.scheme)) +
                  " N=" + std::to_string(cfg.n) +
                  " d=" + std::to_string(cfg.d);
  if (cfg.clusters > 1) {
    s += " clusters=" + std::to_string(cfg.clusters) +
         " T_c=" + std::to_string(cfg.t_c);
  }
  if (cfg.loss.model != loss::ErasureKind::kNone) {
    s += " p=" + std::to_string(cfg.loss.rate);
  }
  return s;
}

std::string error_text(const run::TaskResult& r) {
  if (!r.error) return {};
  try {
    std::rethrow_exception(r.error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Runs the grid on the parallel sweep runner and asserts every audited
/// session finished violation-free.
std::vector<run::TaskResult> sweep_clean(
    const std::vector<SessionConfig>& tasks) {
  const auto results = run::run_sweep(tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].error)
        << describe(tasks[i]) << ": " << error_text(results[i]);
  }
  return results;
}

TEST(AuditGrid, MultiTreeSchemesHoldTheorem2Envelopes) {
  std::vector<SessionConfig> tasks;
  for (const Scheme scheme :
       {Scheme::kMultiTreeStructured, Scheme::kMultiTreeGreedy}) {
    for (const sim::NodeKey n : {5, 14, 40, 63}) {
      for (const int d : {2, 3, 4}) {
        tasks.push_back({.scheme = scheme, .n = n, .d = d, .audit = true});
      }
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, MultiTreeLiveModesHoldShiftedEnvelopes) {
  std::vector<SessionConfig> tasks;
  for (const auto mode : {multitree::StreamMode::kLivePrebuffered,
                          multitree::StreamMode::kLivePipelined}) {
    for (const sim::NodeKey n : {13, 40}) {
      for (const int d : {2, 3}) {
        tasks.push_back({.scheme = Scheme::kMultiTreeGreedy,
                         .n = n,
                         .d = d,
                         .mode = mode,
                         .audit = true});
      }
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, HypercubeSchemesHoldConstantBufferEnvelope) {
  std::vector<SessionConfig> tasks;
  for (const sim::NodeKey n : {7, 25, 63, 127}) {
    tasks.push_back({.scheme = Scheme::kHypercube, .n = n, .d = 1,
                     .audit = true});
  }
  for (const sim::NodeKey n : {24, 90}) {
    for (const int d : {2, 3}) {
      tasks.push_back({.scheme = Scheme::kHypercubeGrouped,
                       .n = n,
                       .d = d,
                       .audit = true});
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, BaselinesHoldClosedFormEnvelopes) {
  std::vector<SessionConfig> tasks;
  for (const sim::NodeKey n : {5, 20, 50}) {
    tasks.push_back({.scheme = Scheme::kChain, .n = n, .d = 1,
                     .audit = true});
    tasks.push_back({.scheme = Scheme::kSingleTree, .n = n, .d = 2,
                     .audit = true});
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, SuperTreeCompositionHoldsUnderTcSweep) {
  std::vector<SessionConfig> tasks;
  for (const int clusters : {3, 6}) {
    for (const sim::Slot t_c : {2, 8, 16}) {
      tasks.push_back({.scheme = Scheme::kMultiTreeGreedy,
                       .n = 10,
                       .d = 2,
                       .clusters = clusters,
                       .big_d = 3,
                       .t_c = t_c,
                       .audit = true});
      tasks.push_back({.scheme = Scheme::kHypercube,
                       .n = 7,
                       .d = 1,
                       .clusters = clusters,
                       .big_d = 3,
                       .t_c = t_c,
                       .audit = true});
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, LossyRecoveryRunsStayWithinProvisionedInvariants) {
  std::vector<SessionConfig> tasks;
  for (const Scheme scheme : {Scheme::kMultiTreeGreedy, Scheme::kChain}) {
    for (const double rate : {0.0, 0.02, 0.1}) {
      SessionConfig cfg{.scheme = scheme, .n = 30, .d = 2, .audit = true};
      cfg.loss.model = loss::ErasureKind::kBernoulli;
      cfg.loss.rate = rate;
      tasks.push_back(cfg);
    }
  }
  // FEC path: decoded packets never cross a link; the physical-stream audit
  // must still hold every capacity/pacing invariant.
  SessionConfig fec{.scheme = Scheme::kMultiTreeGreedy, .n = 30, .d = 2,
                    .audit = true};
  fec.loss.model = loss::ErasureKind::kBernoulli;
  fec.loss.rate = 0.05;
  fec.loss.recovery = loss::RecoveryMode::kFec;
  tasks.push_back(fec);

  const auto results = sweep_clean(tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].error) continue;
    if (tasks[i].loss.rate > 0) {
      EXPECT_GT(results[i].loss.drops, 0) << describe(tasks[i]);
    }
  }
}

TEST(AuditGrid, AuditedRunMatchesUnauditedReport) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeGreedy, .n = 40, .d = 3};
  cfg.audit = false;
  const auto plain = StreamingSession(cfg).run();
  cfg.audit = true;
  const auto audited = StreamingSession(cfg).run();
  EXPECT_EQ(plain.worst_delay, audited.worst_delay);
  EXPECT_EQ(plain.max_buffer, audited.max_buffer);
  EXPECT_EQ(plain.transmissions, audited.transmissions);
}

}  // namespace
}  // namespace streamcast
