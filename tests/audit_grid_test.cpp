// The audited grid sweep: every scheme, over an (N, d) grid — plus a
// (clusters, T_c) grid for the super-tree composition and lossy runs for the
// recovery path — executes under SessionConfig::audit = true, which attaches
// the InvariantAuditor and throws with a structured AuditReport if any of
// the paper's invariants (capacity, collision-freedom, T_c pacing,
// duplicate-freedom, Thm 2 / Prop 1-2 delay & buffer envelopes) breaks.
//
// The grids run through run::run_sweep — the deterministic parallel sweep
// scheduler — both to cut wall-clock on multi-core CI and to keep the
// runner itself under audit coverage: every session here re-checks the full
// invariant set regardless of which worker thread it landed on.
//
// Scheme lists come from the scheme registry, selected by capability flags
// (live_modes, demand_driven, dense_links, multicluster, lossy_links)
// instead of hand-maintained enum lists: a scheme added to the registry
// joins the audited grid automatically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/streamcast.hpp"
#include "src/run/sweep.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;
using core::StreamingSession;

std::string describe(const SessionConfig& cfg) {
  std::string s = std::string(core::scheme_name(cfg.scheme)) +
                  " N=" + std::to_string(cfg.n) +
                  " d=" + std::to_string(cfg.d);
  if (cfg.clusters > 1) {
    s += " clusters=" + std::to_string(cfg.clusters) +
         " T_c=" + std::to_string(cfg.t_c);
  }
  if (cfg.loss.model != loss::ErasureKind::kNone) {
    s += " p=" + std::to_string(cfg.loss.rate);
  }
  return s;
}

std::string error_text(const run::TaskResult& r) {
  if (!r.error) return {};
  try {
    std::rethrow_exception(r.error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Runs the grid on the parallel sweep runner and asserts every audited
/// session finished violation-free.
std::vector<run::TaskResult> sweep_clean(
    const std::vector<SessionConfig>& tasks) {
  const auto results = run::run_sweep(tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].error)
        << describe(tasks[i]) << ": " << error_text(results[i]);
  }
  return results;
}

TEST(AuditGrid, MultiTreeSchemesHoldTheorem2Envelopes) {
  std::vector<SessionConfig> tasks;
  for (const scheme::Descriptor& desc : scheme::all()) {
    if (!desc.caps.memoized_schedule) continue;  // the multi-tree family
    for (const sim::NodeKey n : {5, 14, 40, 63}) {
      for (const int d : {2, 3, 4}) {
        tasks.push_back({.scheme = desc.id, .n = n, .d = d, .audit = true});
      }
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, MultiTreeLiveModesHoldShiftedEnvelopes) {
  std::vector<SessionConfig> tasks;
  for (const scheme::Descriptor& desc : scheme::all()) {
    if (!desc.caps.live_modes) continue;
    for (const auto mode : {multitree::StreamMode::kLivePrebuffered,
                            multitree::StreamMode::kLivePipelined}) {
      for (const sim::NodeKey n : {13, 40}) {
        for (const int d : {2, 3}) {
          tasks.push_back({.scheme = desc.id,
                           .n = n,
                           .d = d,
                           .mode = mode,
                           .audit = true});
        }
      }
    }
  }
  // The registry's live-mode surface is exactly the multi-tree family.
  EXPECT_EQ(tasks.size(), 2u * 2u * 2u * 2u);
  sweep_clean(tasks);
}

TEST(AuditGrid, HypercubeSchemesHoldConstantBufferEnvelope) {
  std::vector<SessionConfig> tasks;
  for (const scheme::Descriptor& desc : scheme::all()) {
    if (!desc.caps.demand_driven) continue;  // the hypercube family
    if (desc.caps.degree_sweep) {
      for (const sim::NodeKey n : {24, 90}) {
        for (const int d : {2, 3}) {
          tasks.push_back({.scheme = desc.id, .n = n, .d = d,
                           .audit = true});
        }
      }
    } else {
      for (const sim::NodeKey n : {7, 25, 63, 127}) {
        tasks.push_back({.scheme = desc.id, .n = n, .d = 1, .audit = true});
      }
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, BaselinesHoldClosedFormEnvelopes) {
  std::vector<SessionConfig> tasks;
  for (const scheme::Descriptor& desc : scheme::all()) {
    if (!desc.caps.dense_links) continue;  // the baseline forwarders
    for (const sim::NodeKey n : {5, 20, 50}) {
      tasks.push_back({.scheme = desc.id,
                       .n = n,
                       .d = desc.caps.degree_sweep ? 2 : 1,
                       .audit = true});
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, SuperTreeCompositionHoldsUnderTcSweep) {
  std::vector<SessionConfig> tasks;
  for (const scheme::Descriptor& desc : scheme::all()) {
    if (!desc.caps.multicluster) continue;
    const sim::NodeKey n = desc.caps.degree_sweep ? 10 : 7;
    const int d = desc.caps.degree_sweep ? 2 : 1;
    for (const int clusters : {3, 6}) {
      for (const sim::Slot t_c : {2, 8, 16}) {
        tasks.push_back({.scheme = desc.id,
                         .n = n,
                         .d = d,
                         .clusters = clusters,
                         .big_d = 3,
                         .t_c = t_c,
                         .audit = true});
      }
    }
  }
  sweep_clean(tasks);
}

TEST(AuditGrid, LossyRecoveryRunsStayWithinProvisionedInvariants) {
  std::vector<SessionConfig> tasks;
  for (const scheme::Descriptor& desc : scheme::all()) {
    if (!desc.caps.lossy_links) continue;  // today: every scheme
    for (const double rate : {0.0, 0.02, 0.1}) {
      SessionConfig cfg{.scheme = desc.id,
                        .n = 30,
                        .d = desc.caps.degree_sweep ? 2 : 1,
                        .audit = true};
      cfg.loss.model = loss::ErasureKind::kBernoulli;
      cfg.loss.rate = rate;
      tasks.push_back(cfg);
    }
  }
  // FEC path: decoded packets never cross a link; the physical-stream audit
  // must still hold every capacity/pacing invariant.
  SessionConfig fec{.scheme = Scheme::kMultiTreeGreedy, .n = 30, .d = 2,
                    .audit = true};
  fec.loss.model = loss::ErasureKind::kBernoulli;
  fec.loss.rate = 0.05;
  fec.loss.recovery = loss::RecoveryMode::kFec;
  tasks.push_back(fec);

  const auto results = sweep_clean(tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].error) continue;
    if (tasks[i].loss.rate > 0) {
      EXPECT_GT(results[i].loss.drops, 0) << describe(tasks[i]);
    }
  }
}

TEST(AuditGrid, AuditedRunMatchesUnauditedReport) {
  SessionConfig cfg{.scheme = Scheme::kMultiTreeGreedy, .n = 40, .d = 3};
  cfg.audit = false;
  const auto plain = StreamingSession(cfg).run();
  cfg.audit = true;
  const auto audited = StreamingSession(cfg).run();
  EXPECT_EQ(plain.worst_delay, audited.worst_delay);
  EXPECT_EQ(plain.max_buffer, audited.max_buffer);
  EXPECT_EQ(plain.transmissions, audited.transmissions);
}

}  // namespace
}  // namespace streamcast
