// Fuzz suite: seeded random configurations driven through every protocol,
// asserting the global invariants that hold regardless of parameters —
// engine capacity checks (implicit: violations throw), window completeness,
// theorem bounds, and cross-implementation agreement.
#include <gtest/gtest.h>

#include "src/core/session.hpp"
#include "src/fluid/bounds.hpp"
#include "src/hypercube/analysis.hpp"
#include "src/multitree/analysis.hpp"
#include "src/multitree/churn.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/schedule.hpp"
#include "src/multitree/structured.hpp"
#include "src/multitree/validate.hpp"
#include "src/util/prng.hpp"

namespace streamcast {
namespace {

using core::Scheme;
using core::SessionConfig;
using core::StreamingSession;

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, RandomSessionsRespectUniversalInvariants) {
  util::Prng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int round = 0; round < 6; ++round) {
    const auto n =
        static_cast<sim::NodeKey>(1 + rng.below(400));
    const int d = static_cast<int>(1 + rng.below(6));
    const Scheme scheme = std::array{
        Scheme::kMultiTreeGreedy, Scheme::kMultiTreeStructured,
        Scheme::kHypercube,       Scheme::kHypercubeGrouped,
        Scheme::kChain,           Scheme::kSingleTree,
    }[rng.below(6)];
    const auto report =
        StreamingSession(SessionConfig{.scheme = scheme, .n = n, .d = d})
            .run();

    // Universal sanity: nobody starts before the stream exists, nobody
    // beats the fluid dedicated-source bound (elapsed convention; the
    // single-tree baseline is exempt — its BoostedCluster gives receivers
    // d-copies-per-slot uplink, outside the bound's model), buffers and
    // neighbors are positive and bounded by N.
    EXPECT_GE(report.worst_delay, 0);
    if (scheme != Scheme::kSingleTree) {
      EXPECT_GE(report.worst_delay + 1, fluid::min_worst_delay(n, d))
          << "scheme=" << report.scheme << " n=" << n << " d=" << d;
    }
    EXPECT_LE(report.average_delay, static_cast<double>(report.worst_delay));
    EXPECT_GE(report.max_buffer, 1u);
    EXPECT_LE(report.max_neighbors, static_cast<std::size_t>(n));
    EXPECT_GT(report.transmissions, 0);
  }
}

TEST_P(FuzzSeeds, RandomForestsKeepAppendixProperties) {
  util::Prng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  for (int round = 0; round < 12; ++round) {
    const auto n = static_cast<sim::NodeKey>(1 + rng.below(3000));
    const int d = static_cast<int>(1 + rng.below(9));
    const multitree::Forest f = rng.chance(0.5)
                                    ? multitree::build_greedy(n, d)
                                    : multitree::build_structured(n, d);
    ASSERT_TRUE(multitree::validate_forest(f).ok) << "n=" << n << " d=" << d;
    // Closed-form delay within Theorem 2 everywhere.
    EXPECT_LE(multitree::closed_form_worst_delay(f),
              multitree::worst_delay_bound(n, d));
  }
}

TEST_P(FuzzSeeds, RandomChurnSequencesKeepInvariants) {
  util::Prng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  const auto n0 = static_cast<sim::NodeKey>(3 + rng.below(60));
  const int d = static_cast<int>(1 + rng.below(4));
  const auto policy = rng.chance(0.5) ? multitree::ChurnPolicy::kEager
                                      : multitree::ChurnPolicy::kLazy;
  multitree::ChurnForest cf(n0, d, policy);
  for (int op = 0; op < 120; ++op) {
    if (cf.n() > 2 && rng.chance(0.5)) {
      const auto id = static_cast<sim::NodeKey>(
          1 + rng.below(static_cast<std::uint64_t>(cf.n())));
      cf.remove(cf.peer_at(id));
    } else {
      cf.add();
    }
    ASSERT_TRUE(multitree::validate_forest(cf.forest()).ok)
        << "n0=" << n0 << " d=" << d << " op=" << op;
    // Vacancies never reach the interior pool.
    ASSERT_LE(cf.forest().n_pad() - cf.n(), d);
  }
}

TEST_P(FuzzSeeds, HypercubeDecompositionAlwaysConsistent) {
  util::Prng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  for (int round = 0; round < 20; ++round) {
    const auto n = static_cast<sim::NodeKey>(1 + rng.below(100000));
    const auto chain = hypercube::decompose_chain(n);
    sim::NodeKey covered = 0;
    sim::Slot start = 0;
    int prev_k = 1 << 30;
    for (const auto& seg : chain) {
      EXPECT_EQ(seg.start, start);
      EXPECT_LE(seg.k, prev_k);  // dimensions are non-increasing
      covered += seg.receivers();
      start += seg.k;
      prev_k = seg.k;
    }
    EXPECT_EQ(covered, n);
    // Theorem 4 closed form holds at every size.
    if (n >= 2) {
      EXPECT_LE(hypercube::average_delay(n), hypercube::theorem4_bound(n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 10));

}  // namespace
}  // namespace streamcast
