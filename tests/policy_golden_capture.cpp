// Offline golden-capture utility for the policy-layer parity suite.
//
// Prints the complete tests/policy_parity_golden.inc to stdout: every cell
// of policy_parity_cells() run through StreamingSession::run_lossy() and
// every cell of policy_shard_cells() through run(), serialized with
// core::serialize(). The committed golden was captured from the tree ONE
// COMMIT BEFORE the src/policy extraction landed (the monolithic
// RecoveryProtocol with its RecoveryMode switches), so the parity test
// proves the refactor byte-identical. Regenerate only for an intentional
// behavior change:
//
//   cmake --build build -j --target policy_golden_capture
//   ./build/tests/policy_golden_capture > tests/policy_parity_golden.inc

#include <iostream>

#include "src/core/report.hpp"
#include "src/core/session.hpp"
#include "tests/policy_parity_cells.hpp"

int main() {
  using namespace streamcast;
  std::cout << "// Golden serialized reports for "
               "tests/policy_parity_cells.hpp, captured from\n"
               "// the pre-policy-layer tree (monolithic "
               "loss::RecoveryProtocol, fixed\n"
               "// playback-start slot). Regenerate only for an intentional "
               "behavior change\n"
               "// via tests/policy_golden_capture.cpp.\n"
               "inline constexpr const char* kPolicyParityGolden = "
               "R\"GOLD(\n";
  for (const core::PolicyParityCell& cell : core::policy_parity_cells()) {
    const core::StreamingSession session(cell.cfg);
    const core::LossRunResult r = session.run_lossy();
    std::cout << "=== " << cell.id << "\n" << core::serialize(r) << "\n";
  }
  for (const core::PolicyParityCell& cell : core::policy_shard_cells()) {
    const core::StreamingSession session(cell.cfg);
    const core::QosReport q = session.run();
    std::cout << "=== " << cell.id << "\n" << core::serialize(q) << "\n";
  }
  std::cout << ")GOLD\";\n";
  return 0;
}
