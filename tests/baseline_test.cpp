// Baseline tests: the chain and single-tree strawmen of §1 behave exactly as
// the paper's closed forms say.
#include <gtest/gtest.h>

#include "src/baseline/chain.hpp"
#include "src/baseline/single_tree.hpp"
#include "src/metrics/buffers.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/neighbors.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"

namespace streamcast::baseline {
namespace {

using metrics::DelayRecorder;

TEST(Chain, DelaysAreLinearInPosition) {
  const NodeKey n = 40;
  net::UniformCluster topo(n, 1);
  ChainProtocol proto(n);
  sim::Engine engine(topo, proto);
  DelayRecorder rec(n + 1, 8);
  engine.add_observer(rec);
  engine.run_until(8 + n + 2);
  for (NodeKey i = 1; i <= n; ++i) {
    ASSERT_TRUE(rec.complete(i));
    EXPECT_EQ(*rec.playback_delay(i), chain_delay(i)) << "i=" << i;
  }
  EXPECT_EQ(rec.worst_delay(1, n), chain_worst_delay(n));
  EXPECT_DOUBLE_EQ(rec.average_delay(1, n), chain_average_delay(n));
}

TEST(Chain, BufferIsConstant) {
  const NodeKey n = 25;
  net::UniformCluster topo(n, 1);
  ChainProtocol proto(n);
  sim::Engine engine(topo, proto);
  DelayRecorder rec(n + 1, 10);
  engine.add_observer(rec);
  engine.run_until(10 + n + 2);
  for (const std::size_t b : metrics::max_occupancies(rec, 1, n)) {
    EXPECT_LE(b, 1u);
  }
}

TEST(Chain, TwoNeighborsMax) {
  const NodeKey n = 12;
  net::UniformCluster topo(n, 1);
  ChainProtocol proto(n);
  sim::Engine engine(topo, proto);
  metrics::NeighborRecorder rec(n + 1);
  engine.add_observer(rec);
  engine.run_until(n + 10);
  EXPECT_LE(rec.max_count(1, n), 2u);
}

TEST(SingleTree, DelaysEqualDepthMinusOne) {
  const NodeKey n = 30;
  const int d = 2;
  BoostedCluster topo(n, d);
  SingleTreeProtocol proto(n, d);
  sim::Engine engine(topo, proto);
  DelayRecorder rec(n + 1, 8);
  engine.add_observer(rec);
  engine.run_until(8 + single_tree_worst_delay(n, d) + 4);
  for (NodeKey i = 1; i <= n; ++i) {
    ASSERT_TRUE(rec.complete(i));
    EXPECT_EQ(*rec.playback_delay(i), single_tree_depth(i, d) - 1);
  }
  EXPECT_EQ(rec.worst_delay(1, n), single_tree_worst_delay(n, d));
  EXPECT_DOUBLE_EQ(rec.average_delay(1, n), single_tree_average_delay(n, d));
}

TEST(SingleTree, RequiresBoostedUplink) {
  // On the paper's homogeneous topology (receiver capacity 1), a binary
  // interior node's two sends per slot violate capacity — which is exactly
  // the §1 argument against the single-tree design.
  const NodeKey n = 7;
  net::UniformCluster topo(n, 2);
  SingleTreeProtocol proto(n, 2);
  sim::Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(4), sim::ProtocolViolation);
}

TEST(SingleTree, LeafFractionApproachesOneMinusOneOverD) {
  EXPECT_NEAR(single_tree_leaf_fraction(1023, 2), 0.5, 0.01);
  EXPECT_NEAR(single_tree_leaf_fraction(1092, 3), 2.0 / 3.0, 0.01);
  EXPECT_GT(single_tree_leaf_fraction(100, 4), 0.70);
}

TEST(SingleTree, DepthHelpers) {
  EXPECT_EQ(single_tree_depth(1, 2), 1);
  EXPECT_EQ(single_tree_depth(2, 2), 1);
  EXPECT_EQ(single_tree_depth(3, 2), 2);
  EXPECT_EQ(single_tree_depth(7, 2), 3);
  EXPECT_EQ(single_tree_depth(3, 3), 1);
  EXPECT_EQ(single_tree_depth(4, 3), 2);
}

TEST(Baselines, RejectBadArguments) {
  EXPECT_THROW(ChainProtocol(0), std::invalid_argument);
  EXPECT_THROW(SingleTreeProtocol(0, 2), std::invalid_argument);
  EXPECT_THROW(SingleTreeProtocol(5, 0), std::invalid_argument);
  EXPECT_THROW(BoostedCluster(0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::baseline
