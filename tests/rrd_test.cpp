// Random regular digraph construction (src/rrd/digraph.*): regularity,
// self-loop freedom, seed determinism, and the envelope's shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "src/rrd/digraph.hpp"

namespace streamcast::rrd {
namespace {

TEST(RrdDigraph, IsDRegularInAndOutWithNoSelfLoops) {
  for (const NodeKey n : {2, 3, 7, 16, 33, 100}) {
    for (const int d : {2, 3, 5}) {
      const Digraph g = build_digraph(n, d, 0x5eed);
      ASSERT_EQ(g.out.size(), static_cast<std::size_t>(n));
      for (NodeKey u = 1; u <= n; ++u) {
        const auto& targets = g.out[static_cast<std::size_t>(u - 1)];
        EXPECT_EQ(targets.size(), static_cast<std::size_t>(d));
        for (const NodeKey v : targets) {
          EXPECT_NE(v, u) << "self-loop at " << u;
          EXPECT_GE(v, 1);
          EXPECT_LE(v, n);
        }
      }
      // Union of d permutations: in-degree is exactly d too.
      for (NodeKey v = 1; v <= n; ++v) {
        EXPECT_EQ(g.in_degree(v), d) << "n=" << n << " d=" << d << " v=" << v;
      }
    }
  }
}

TEST(RrdDigraph, SourceFeedsMinDNDistinctEntryReceivers) {
  for (const NodeKey n : {1, 2, 3, 8}) {
    for (const int d : {2, 4}) {
      const Digraph g = build_digraph(n, d, 7);
      EXPECT_EQ(g.source_out.size(),
                static_cast<std::size_t>(std::min<NodeKey>(d, n)));
      for (std::size_t i = 0; i < g.source_out.size(); ++i) {
        for (std::size_t j = i + 1; j < g.source_out.size(); ++j) {
          EXPECT_NE(g.source_out[i], g.source_out[j]);
        }
      }
    }
  }
}

TEST(RrdDigraph, LoneReceiverHasNoPeerEdges) {
  const Digraph g = build_digraph(1, 3, 1);
  EXPECT_TRUE(g.out[0].empty());
  EXPECT_EQ(g.source_out.size(), 1u);
}

TEST(RrdDigraph, SameSeedSameGraphDistinctSeedsDiffer) {
  const Digraph a = build_digraph(40, 3, 11);
  const Digraph b = build_digraph(40, 3, 11);
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.source_out, b.source_out);
  const Digraph c = build_digraph(40, 3, 12);
  EXPECT_NE(a.out, c.out);
}

TEST(RrdDigraph, RejectsDegenerateParameters) {
  EXPECT_THROW((void)build_digraph(0, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)build_digraph(-3, 2, 1), std::invalid_argument);
  // d = 1 is the ring regime where the O(log N) analysis does not apply.
  EXPECT_THROW((void)build_digraph(10, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)build_digraph(10, 0, 1), std::invalid_argument);
}

TEST(RrdDigraph, DelayBoundGrowsLogarithmically) {
  // Doubling N adds exactly 2 slots (one log2 step); growing d adds d.
  EXPECT_EQ(delay_bound(64, 2) + 2, delay_bound(128, 2));
  EXPECT_EQ(delay_bound(128, 2) + 2, delay_bound(256, 2));
  EXPECT_EQ(delay_bound(64, 3), delay_bound(64, 2) + 1);
  EXPECT_GT(delay_bound(2, 2), 0);
}

}  // namespace
}  // namespace streamcast::rrd
