#include <gtest/gtest.h>

#include "src/net/buffer.hpp"
#include "src/net/topology.hpp"

namespace streamcast::net {
namespace {

TEST(UniformCluster, CapacitiesAndLatency) {
  UniformCluster topo(10, 3);
  EXPECT_EQ(topo.size(), 11);
  EXPECT_EQ(topo.send_capacity(0), 3);
  EXPECT_EQ(topo.recv_capacity(0), 0);
  EXPECT_EQ(topo.send_capacity(5), 1);
  EXPECT_EQ(topo.recv_capacity(5), 1);
  EXPECT_EQ(topo.latency(0, 1), 1);
  EXPECT_EQ(topo.latency(3, 9), 1);
}

TEST(UniformCluster, RejectsBadArguments) {
  EXPECT_THROW(UniformCluster(-1, 2), std::invalid_argument);
  EXPECT_THROW(UniformCluster(5, 0), std::invalid_argument);
  EXPECT_THROW(UniformCluster(5, 2, 0), std::invalid_argument);
}

TEST(ClusteredTopology, KeyLayout) {
  ClusteredTopology topo({{.n_receivers = 3}, {.n_receivers = 2}},
                         /*big_d=*/3, /*small_d=*/2, /*t_c=*/10);
  // 1 source + (2 supers + 3) + (2 supers + 2) = 10.
  EXPECT_EQ(topo.size(), 10);
  EXPECT_EQ(topo.source(), 0);
  EXPECT_EQ(topo.super_node(0), 1);
  EXPECT_EQ(topo.local_root(0), 2);
  EXPECT_EQ(topo.receiver(0, 1), 3);
  EXPECT_EQ(topo.receiver(0, 3), 5);
  EXPECT_EQ(topo.super_node(1), 6);
  EXPECT_EQ(topo.local_root(1), 7);
  EXPECT_EQ(topo.receiver(1, 2), 9);
}

TEST(ClusteredTopology, LatencyWithinAndAcross) {
  ClusteredTopology topo({{.n_receivers = 3}, {.n_receivers = 2}}, 3, 2, 10);
  // Source is in cluster 0 by convention.
  EXPECT_EQ(topo.cluster_of(0), 0);
  EXPECT_EQ(topo.latency(0, topo.super_node(0)), 1);
  EXPECT_EQ(topo.latency(0, topo.super_node(1)), 10);
  EXPECT_EQ(topo.latency(topo.receiver(0, 1), topo.receiver(0, 2)), 1);
  EXPECT_EQ(topo.latency(topo.receiver(0, 1), topo.receiver(1, 1)), 10);
}

TEST(ClusteredTopology, Capacities) {
  ClusteredTopology topo({{.n_receivers = 3}, {.n_receivers = 2}},
                         /*big_d=*/4, /*small_d=*/3, /*t_c=*/10);
  EXPECT_EQ(topo.send_capacity(0), 4);                    // S
  EXPECT_EQ(topo.send_capacity(topo.super_node(1)), 4);   // S_i
  EXPECT_EQ(topo.send_capacity(topo.local_root(1)), 3);   // S'_i
  EXPECT_EQ(topo.send_capacity(topo.receiver(1, 1)), 1);  // plain receiver
}

TEST(ClusteredTopology, RejectsBadArguments) {
  using Spec = ClusteredTopology::ClusterSpec;
  EXPECT_THROW(ClusteredTopology({}, 3, 2, 10), std::invalid_argument);
  EXPECT_THROW(ClusteredTopology({Spec{1}}, 2, 2, 10), std::invalid_argument);
  EXPECT_THROW(ClusteredTopology({Spec{1}}, 3, 2, 1), std::invalid_argument);
}

TEST(PlaybackBuffer, InOrderArrivalPlaysWithoutHiccups) {
  PlaybackBuffer buf(/*start_slot=*/2);
  for (sim::Slot t = 0; t < 10; ++t) {
    buf.on_receive(t, t);  // packet t arrives in slot t
    buf.advance_to(t);
  }
  EXPECT_EQ(buf.hiccups(), 0);
  EXPECT_EQ(buf.played(), 8);  // packets 0..7 played in slots 2..9
  EXPECT_LE(buf.max_occupancy(), 3u);
}

TEST(PlaybackBuffer, OutOfOrderWithinStartWindowIsFine) {
  // Arrivals: packet 2 at slot 0, packet 0 at slot 1, packet 1 at slot 2.
  PlaybackBuffer buf(/*start_slot=*/2);
  buf.on_receive(0, 2);
  buf.advance_to(0);
  buf.on_receive(1, 0);
  buf.advance_to(1);
  buf.on_receive(2, 1);
  buf.advance_to(2);  // plays packet 0
  buf.advance_to(4);  // plays packets 1, 2
  EXPECT_EQ(buf.hiccups(), 0);
  EXPECT_EQ(buf.played(), 3);
  EXPECT_EQ(buf.max_occupancy(), 3u);
}

TEST(PlaybackBuffer, MissingPacketCountsOneHiccupAndSkips) {
  PlaybackBuffer buf(/*start_slot=*/0);
  buf.on_receive(0, 0);
  buf.advance_to(0);  // plays 0
  buf.advance_to(1);  // packet 1 missing -> hiccup, skipped
  buf.on_receive(2, 2);
  buf.advance_to(2);  // plays 2
  EXPECT_EQ(buf.hiccups(), 1);
  EXPECT_EQ(buf.played(), 2);
}

TEST(PlaybackBuffer, LateArrivalCounted) {
  PlaybackBuffer buf(/*start_slot=*/0);
  buf.advance_to(0);      // packet 0 missing
  buf.on_receive(1, 0);   // arrives one slot late
  buf.advance_to(1);      // packet 1 missing too
  EXPECT_EQ(buf.hiccups(), 2);
  EXPECT_EQ(buf.late_or_duplicate(), 1);
}

TEST(PlaybackBuffer, DuplicateCounted) {
  PlaybackBuffer buf(/*start_slot=*/5);
  buf.on_receive(0, 3);
  buf.on_receive(1, 3);
  EXPECT_EQ(buf.late_or_duplicate(), 1);
  EXPECT_EQ(buf.occupancy(), 1u);
}

TEST(PlaybackBuffer, OccupancyGrowsUntilStart) {
  PlaybackBuffer buf(/*start_slot=*/4);
  for (sim::Slot t = 0; t < 8; ++t) {
    buf.on_receive(t, t);
    buf.advance_to(t);
  }
  // Slots 0..3 accumulate packets 0..3; playback then keeps pace.
  EXPECT_EQ(buf.max_occupancy(), 5u);
  EXPECT_EQ(buf.hiccups(), 0);
}

}  // namespace
}  // namespace streamcast::net
