// The registry parity grid: every Scheme x stream mode x {lossless, lossy}
// cell (plus FEC, Gilbert-Elliott, and multi-cluster extras), each one a
// fully-specified SessionConfig. The golden capture in
// scheme_parity_golden.inc was produced by running exactly these cells
// through the pre-refactor StreamingSession dispatch (the 18-arm switches
// that lived in core/session.cpp); the parity suite re-runs them through the
// SchemeRegistry + RunPipeline and asserts the serialized reports are
// byte-identical.
//
// Shared between the parity test and the (offline) golden-capture program,
// so the cell list cannot drift from the goldens.
#pragma once

#include <string>
#include <vector>

#include "src/core/config.hpp"

namespace streamcast::core {

struct ParityCell {
  std::string id;
  SessionConfig cfg;
};

inline std::vector<ParityCell> parity_cells() {
  std::vector<ParityCell> cells;

  struct SchemePoint {
    Scheme scheme;
    const char* name;
    NodeKey n;
    int d;
  };
  const SchemePoint points[] = {
      {Scheme::kMultiTreeStructured, "multi-tree/structured", 21, 2},
      {Scheme::kMultiTreeGreedy, "multi-tree/greedy", 21, 2},
      {Scheme::kHypercube, "hypercube", 21, 1},
      {Scheme::kHypercubeGrouped, "hypercube/grouped", 20, 2},
      {Scheme::kChain, "chain", 12, 1},
      {Scheme::kSingleTree, "single-tree", 14, 2},
  };
  const struct {
    multitree::StreamMode mode;
    const char* name;
  } modes[] = {
      {multitree::StreamMode::kPreRecorded, "pre"},
      {multitree::StreamMode::kLivePrebuffered, "live-pre"},
      {multitree::StreamMode::kLivePipelined, "live-pipe"},
  };

  // The full cross: scheme x mode x {lossless, lossy-NACK}. Schemes that
  // stream pre-recorded data ignore the mode; their mode cells locking onto
  // the same golden is itself part of the contract.
  for (const SchemePoint& p : points) {
    for (const auto& m : modes) {
      SessionConfig base{.scheme = p.scheme, .n = p.n, .d = p.d,
                         .mode = m.mode};
      cells.push_back({std::string(p.name) + " mode=" + m.name + " loss=none",
                       base});
      SessionConfig lossy = base;
      lossy.loss.model = loss::ErasureKind::kBernoulli;
      lossy.loss.rate = 0.08;
      lossy.loss.seed = 0xd00d;
      cells.push_back({std::string(p.name) + " mode=" + m.name + " loss=nack",
                       lossy});
    }
  }

  // FEC repair cells.
  {
    SessionConfig fec{.scheme = Scheme::kMultiTreeGreedy, .n = 21, .d = 2};
    fec.loss.model = loss::ErasureKind::kBernoulli;
    fec.loss.rate = 0.05;
    fec.loss.seed = 0xfec5;
    fec.loss.recovery = loss::RecoveryMode::kFec;
    cells.push_back({"multi-tree/greedy mode=pre loss=fec", fec});
    fec.scheme = Scheme::kChain;
    fec.n = 12;
    fec.d = 1;
    cells.push_back({"chain mode=pre loss=fec", fec});
  }

  // Gilbert-Elliott bursty channel.
  {
    SessionConfig ge{.scheme = Scheme::kChain, .n = 12, .d = 1};
    ge.loss.model = loss::ErasureKind::kGilbertElliott;
    ge.loss.seed = 0x6e11;
    cells.push_back({"chain mode=pre loss=ge", ge});
  }

  // NOTE: the randomized/dynamic schemes (random-regular, dynamic-trees)
  // are deliberately absent. They never existed in the pre-refactor 18-arm
  // dispatch, so there is nothing to hold parity against; and a byte-golden
  // would lock the exact seeded PRNG draw *sequence*, so any
  // behavior-preserving change (an extra tie-break candidate, a reordered
  // scan) would invalidate the capture without signaling a real regression.
  // They get invariant cells instead — see randomized_invariant_cells()
  // below and tests/scheme_differential_test.cpp, which assert
  // seed-determinism, audit-envelope satisfaction, and audited/unaudited
  // byte-identity rather than fixed bytes.

  // Multi-cluster super-tree composition (both supported intra schemes).
  cells.push_back({"multi-tree/greedy clusters=3",
                   SessionConfig{.scheme = Scheme::kMultiTreeGreedy,
                                 .n = 8,
                                 .d = 2,
                                 .clusters = 3,
                                 .big_d = 3,
                                 .t_c = 4}});
  cells.push_back({"hypercube clusters=4",
                   SessionConfig{.scheme = Scheme::kHypercube,
                                 .n = 7,
                                 .d = 1,
                                 .clusters = 4,
                                 .big_d = 3,
                                 .t_c = 5}});
  return cells;
}

/// Non-golden cells for the seeded randomized/dynamic schemes, mirroring the
/// parity grid's mode x {lossless, lossy} cross at one (n, d, seed) point
/// each. The differential suite runs these under invariant assertions
/// (determinism across thread counts and repeats, audited == unaudited,
/// envelope satisfaction) instead of comparing against captured bytes — see
/// the note above parity_cells()'s multi-cluster section for why.
inline std::vector<ParityCell> randomized_invariant_cells() {
  std::vector<ParityCell> cells;
  const struct {
    Scheme scheme;
    const char* name;
  } points[] = {
      {Scheme::kRandomRegular, "random-regular"},
      {Scheme::kDynamicTrees, "dynamic-trees"},
  };
  const struct {
    multitree::StreamMode mode;
    const char* name;
  } modes[] = {
      {multitree::StreamMode::kPreRecorded, "pre"},
      {multitree::StreamMode::kLivePrebuffered, "live-pre"},
      {multitree::StreamMode::kLivePipelined, "live-pipe"},
  };
  for (const auto& p : points) {
    for (const auto& m : modes) {
      SessionConfig base{.scheme = p.scheme, .n = 30, .d = 2, .mode = m.mode};
      base.seed = 0xd1ce;
      cells.push_back(
          {std::string(p.name) + " mode=" + m.name + " loss=none", base});
      SessionConfig lossy = base;
      lossy.loss.model = loss::ErasureKind::kBernoulli;
      lossy.loss.rate = 0.08;
      lossy.loss.seed = 0xd00d;
      cells.push_back(
          {std::string(p.name) + " mode=" + m.name + " loss=nack", lossy});
    }
  }
  return cells;
}

}  // namespace streamcast::core
