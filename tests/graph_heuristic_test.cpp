// Heuristic IDT tests: soundness (every witness verifies), agreement with
// the exact solver on structured families, and measured completeness on
// random graphs.
#include <gtest/gtest.h>

#include "src/graph/idt_heuristic.hpp"
#include "src/graph/idt_solver.hpp"
#include "src/util/prng.hpp"

namespace streamcast::graph {
namespace {

Graph complete(Vertex n) {
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) g.add_edge(a, b);
  }
  return g;
}

Graph random_graph(Vertex n, double p, util::Prng& rng) {
  Graph g(n);
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = a + 1; b < n; ++b) {
      if (rng.chance(p)) g.add_edge(a, b);
    }
  }
  // Ensure connectivity from the root so instances are meaningful.
  for (Vertex v = 1; v < n; ++v) {
    if (g.neighbors(v).empty()) g.add_edge(0, v);
  }
  return g;
}

TEST(GreedyCds, FindsMinimalSetsOnSimpleFamilies) {
  // Complete graph: the empty set dominates.
  const auto cds = greedy_cds(complete(8), 0, ~std::uint64_t{0});
  ASSERT_TRUE(cds.has_value());
  EXPECT_EQ(*cds, 0u);
  // Path 0-1-2-3-4: pruned CDS from root 0 must keep 1,2,3.
  Graph path(5);
  for (Vertex v = 0; v + 1 < 5; ++v) path.add_edge(v, v + 1);
  const auto p = greedy_cds(path, 0, ~std::uint64_t{0});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(is_connected_dominating(path, 0, *p));
  EXPECT_EQ(*p, 0b01110u);
}

TEST(GreedyCds, RespectsAllowedMask) {
  // Path 0-1-2: excluding vertex 1 makes domination of 2 impossible.
  Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  EXPECT_FALSE(greedy_cds(path, 0, 0b100).has_value());
}

TEST(GreedyTwoIdt, SoundOnEverything) {
  util::Prng rng(11);
  for (int trial = 0; trial < 120; ++trial) {
    const auto n = static_cast<Vertex>(5 + rng.below(9));
    const double p = 0.15 + 0.7 * rng.uniform();
    const Graph g = random_graph(n, p, rng);
    const auto witness = greedy_two_idt(g, 0);
    if (witness) {
      EXPECT_TRUE(
          is_interior_disjoint_pair(g, 0, witness->tree_a, witness->tree_b))
          << "trial " << trial;
    }
  }
}

TEST(GreedyTwoIdt, NoFalsePositivesAndDecentCompleteness) {
  // Against the exact solver on small random graphs: the heuristic must
  // never claim a solution where none exists, and should find most that do.
  util::Prng rng(21);
  int solvable = 0;
  int found = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const auto n = static_cast<Vertex>(5 + rng.below(7));  // 5..11
    const double p = 0.2 + 0.6 * rng.uniform();
    const Graph g = random_graph(n, p, rng);
    const bool exact = two_interior_disjoint_trees(g, 0).has_value();
    const bool heuristic = greedy_two_idt(g, 0).has_value();
    if (heuristic) {
      EXPECT_TRUE(exact) << "false positive, trial " << trial;
    }
    solvable += exact;
    found += heuristic && exact;
  }
  ASSERT_GT(solvable, 30);
  // Completeness on this family: at least 70% of solvable instances found.
  EXPECT_GE(10 * found, 7 * solvable)
      << found << "/" << solvable << " solvable instances found";
}

TEST(GreedyTwoIdt, WorksBeyondTheExactSolverLimit) {
  // 48-vertex dense random graph: exact is infeasible (2^47), greedy is
  // instant and must produce a verified pair.
  util::Prng rng(31);
  const Graph g = random_graph(48, 0.3, rng);
  const auto witness = greedy_two_idt(g, 0);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(
      is_interior_disjoint_pair(g, 0, witness->tree_a, witness->tree_b));
}

TEST(GreedyTwoIdt, FailsHonestlyOnPaths) {
  Graph path(6);
  for (Vertex v = 0; v + 1 < 6; ++v) path.add_edge(v, v + 1);
  EXPECT_FALSE(greedy_two_idt(path, 0).has_value());
}

}  // namespace
}  // namespace streamcast::graph
