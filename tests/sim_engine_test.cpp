// Engine tests: latency semantics, capacity enforcement, duplicate
// detection, observer dispatch.
#include <gtest/gtest.h>

#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/trace.hpp"

namespace streamcast::sim {
namespace {

/// Scripted protocol: replays a fixed list of (slot, Tx).
class Scripted final : public Protocol {
 public:
  void at(Slot t, Tx tx) { script_.emplace_back(t, tx); }

  void transmit(Slot t, std::vector<Tx>& out) override {
    for (const auto& [slot, tx] : script_) {
      if (slot == t) out.push_back(tx);
    }
  }
  void deliver(Slot t, const Tx& tx) override {
    delivered.push_back(Delivery{.sent = -1, .received = t, .tx = tx});
  }

  std::vector<Delivery> delivered;

 private:
  std::vector<std::pair<Slot, Tx>> script_;
};

class Recorder final : public DeliveryObserver {
 public:
  void on_delivery(const Delivery& d) override { all.push_back(d); }
  std::vector<Delivery> all;
};

Tx tx(NodeKey from, NodeKey to, PacketId p) {
  return Tx{.from = from, .to = to, .packet = p, .tag = 0};
}

TEST(Engine, UnitLatencyDeliversSameSlot) {
  net::UniformCluster topo(3, 1);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  Engine engine(topo, proto);
  Recorder rec;
  engine.add_observer(rec);
  engine.run_until(1);
  ASSERT_EQ(rec.all.size(), 1u);
  EXPECT_EQ(rec.all[0].sent, 0);
  EXPECT_EQ(rec.all[0].received, 0);
  EXPECT_EQ(proto.delivered.size(), 1u);
}

TEST(Engine, InterClusterLatencyDelaysDelivery) {
  // Two clusters, T_c = 5: a cross-cluster packet sent in slot 0 arrives in
  // slot 4 (occupies 5 slots).
  net::ClusteredTopology topo({{.n_receivers = 2}, {.n_receivers = 2}},
                              /*big_d=*/3, /*small_d=*/2, /*t_c=*/5);
  Scripted proto;
  proto.at(0, tx(topo.super_node(0), topo.super_node(1), 7));
  Engine engine(topo, proto);
  Recorder rec;
  engine.add_observer(rec);
  engine.run_until(4);
  EXPECT_TRUE(rec.all.empty());
  engine.run_until(5);
  ASSERT_EQ(rec.all.size(), 1u);
  EXPECT_EQ(rec.all[0].received, 4);
}

TEST(Engine, SendCapacityEnforced) {
  net::UniformCluster topo(3, /*source_capacity=*/2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(0, tx(0, 2, 1));
  proto.at(0, tx(0, 3, 2));  // third send from S: over capacity 2
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, ReceiverSendCapacityIsOne) {
  net::UniformCluster topo(3, 4);
  Scripted proto;
  proto.at(0, tx(1, 2, 0));
  proto.at(0, tx(1, 3, 1));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, ReceiveCapacityEnforced) {
  net::UniformCluster topo(3, 4);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(0, tx(0, 1, 1));  // node 1 receives twice in one slot
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, SourceCannotReceive) {
  net::UniformCluster topo(2, 2);
  Scripted proto;
  proto.at(0, tx(1, 0, 0));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, SelfSendRejected) {
  net::UniformCluster topo(2, 2);
  Scripted proto;
  proto.at(0, tx(1, 1, 0));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, OutOfRangeKeyRejected) {
  net::UniformCluster topo(2, 2);
  Scripted proto;
  proto.at(0, tx(0, 9, 0));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, DuplicateDeliveryRejectedByDefault) {
  net::UniformCluster topo(3, 2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(1, tx(2, 1, 0));  // same packet again (from another sender)
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(2), ProtocolViolation);
}

TEST(Engine, DuplicateDeliveryCountedWhenAllowed) {
  net::UniformCluster topo(3, 2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(1, tx(2, 1, 0));
  Engine engine(topo, proto, EngineOptions{.forbid_duplicates = false});
  engine.run_until(2);
  EXPECT_EQ(engine.stats().duplicate_deliveries, 1);
  EXPECT_EQ(engine.stats().transmissions, 2);
}

TEST(Engine, CapacityIsPerSlotNotCumulative) {
  net::UniformCluster topo(3, 1);
  Scripted proto;
  for (Slot t = 0; t < 10; ++t) {
    proto.at(t, tx(0, 1, t));  // one send per slot for 10 slots: fine
  }
  Engine engine(topo, proto);
  EXPECT_NO_THROW(engine.run_until(10));
  EXPECT_EQ(engine.stats().transmissions, 10);
}

TEST(Engine, RunUntilIsResumable) {
  net::UniformCluster topo(2, 1);
  Scripted proto;
  proto.at(3, tx(0, 1, 0));
  Engine engine(topo, proto);
  engine.run_until(2);
  EXPECT_EQ(engine.now(), 2);
  engine.run_until(5);
  EXPECT_EQ(engine.now(), 5);
  EXPECT_EQ(proto.delivered.size(), 1u);
}

TEST(Trace, QueriesBySenderReceiverAndSlot) {
  Trace trace;
  trace.record(Delivery{.sent = 0, .received = 0, .tx = tx(0, 1, 5)});
  trace.record(Delivery{.sent = 1, .received = 1, .tx = tx(1, 2, 5)});
  trace.record(Delivery{.sent = 1, .received = 1, .tx = tx(0, 3, 6)});
  EXPECT_EQ(trace.all().size(), 3u);
  EXPECT_EQ(trace.received_by(2).size(), 1u);
  EXPECT_EQ(trace.sent_by(0).size(), 2u);
  EXPECT_EQ(trace.sent_in(1).size(), 2u);
  EXPECT_EQ(trace.sent_in(7).size(), 0u);
}

}  // namespace
}  // namespace streamcast::sim
