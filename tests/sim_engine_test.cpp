// Engine tests: latency semantics, capacity enforcement, duplicate
// detection, observer dispatch, loss hooks, in-flight ring growth.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/loss/model.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/trace.hpp"

namespace streamcast::sim {
namespace {

/// Scripted protocol: replays a fixed list of (slot, Tx).
class Scripted final : public Protocol {
 public:
  void at(Slot t, Tx tx) { script_.emplace_back(t, tx); }

  void transmit(Slot t, std::vector<Tx>& out) override {
    for (const auto& [slot, tx] : script_) {
      if (slot == t) out.push_back(tx);
    }
  }
  void deliver(Slot t, const Tx& tx) override {
    delivered.push_back(Delivery{.sent = -1, .received = t, .tx = tx});
  }

  std::vector<Delivery> delivered;

 private:
  std::vector<std::pair<Slot, Tx>> script_;
};

class Recorder final : public DeliveryObserver {
 public:
  void on_delivery(const Delivery& d) override { all.push_back(d); }
  std::vector<Delivery> all;
};

Tx tx(NodeKey from, NodeKey to, PacketId p) {
  return Tx{.from = from, .to = to, .packet = p, .tag = 0};
}

TEST(Engine, UnitLatencyDeliversSameSlot) {
  net::UniformCluster topo(3, 1);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  Engine engine(topo, proto);
  Recorder rec;
  engine.add_observer(rec);
  engine.run_until(1);
  ASSERT_EQ(rec.all.size(), 1u);
  EXPECT_EQ(rec.all[0].sent, 0);
  EXPECT_EQ(rec.all[0].received, 0);
  EXPECT_EQ(proto.delivered.size(), 1u);
}

TEST(Engine, InterClusterLatencyDelaysDelivery) {
  // Two clusters, T_c = 5: a cross-cluster packet sent in slot 0 arrives in
  // slot 4 (occupies 5 slots).
  net::ClusteredTopology topo({{.n_receivers = 2}, {.n_receivers = 2}},
                              /*big_d=*/3, /*small_d=*/2, /*t_c=*/5);
  Scripted proto;
  proto.at(0, tx(topo.super_node(0), topo.super_node(1), 7));
  Engine engine(topo, proto);
  Recorder rec;
  engine.add_observer(rec);
  engine.run_until(4);
  EXPECT_TRUE(rec.all.empty());
  engine.run_until(5);
  ASSERT_EQ(rec.all.size(), 1u);
  EXPECT_EQ(rec.all[0].received, 4);
}

TEST(Engine, SendCapacityEnforced) {
  net::UniformCluster topo(3, /*source_capacity=*/2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(0, tx(0, 2, 1));
  proto.at(0, tx(0, 3, 2));  // third send from S: over capacity 2
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, ReceiverSendCapacityIsOne) {
  net::UniformCluster topo(3, 4);
  Scripted proto;
  proto.at(0, tx(1, 2, 0));
  proto.at(0, tx(1, 3, 1));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, ReceiveCapacityEnforced) {
  net::UniformCluster topo(3, 4);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(0, tx(0, 1, 1));  // node 1 receives twice in one slot
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, SourceCannotReceive) {
  net::UniformCluster topo(2, 2);
  Scripted proto;
  proto.at(0, tx(1, 0, 0));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, SelfSendRejected) {
  net::UniformCluster topo(2, 2);
  Scripted proto;
  proto.at(0, tx(1, 1, 0));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, OutOfRangeKeyRejected) {
  net::UniformCluster topo(2, 2);
  Scripted proto;
  proto.at(0, tx(0, 9, 0));
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(1), ProtocolViolation);
}

TEST(Engine, DuplicateDeliveryRejectedByDefault) {
  net::UniformCluster topo(3, 2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(1, tx(2, 1, 0));  // same packet again (from another sender)
  Engine engine(topo, proto);
  EXPECT_THROW(engine.run_until(2), ProtocolViolation);
}

TEST(Engine, DuplicateDeliveryCountedWhenAllowed) {
  net::UniformCluster topo(3, 2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(1, tx(2, 1, 0));
  Engine engine(topo, proto, EngineOptions{.forbid_duplicates = false});
  engine.run_until(2);
  EXPECT_EQ(engine.stats().duplicate_deliveries, 1);
  EXPECT_EQ(engine.stats().transmissions, 2);
}

TEST(Engine, CapacityIsPerSlotNotCumulative) {
  net::UniformCluster topo(3, 1);
  Scripted proto;
  for (Slot t = 0; t < 10; ++t) {
    proto.at(t, tx(0, 1, t));  // one send per slot for 10 slots: fine
  }
  Engine engine(topo, proto);
  EXPECT_NO_THROW(engine.run_until(10));
  EXPECT_EQ(engine.stats().transmissions, 10);
}

TEST(Engine, RunUntilIsResumable) {
  net::UniformCluster topo(2, 1);
  Scripted proto;
  proto.at(3, tx(0, 1, 0));
  Engine engine(topo, proto);
  engine.run_until(2);
  EXPECT_EQ(engine.now(), 2);
  engine.run_until(5);
  EXPECT_EQ(engine.now(), 5);
  EXPECT_EQ(proto.delivered.size(), 1u);
}

/// Loss model for tests: erases transmissions of the listed packet ids.
class DropListed final : public loss::LossModel {
 public:
  explicit DropListed(std::vector<PacketId> ids) : ids_(std::move(ids)) {}
  bool erased(Slot, const Tx& t) override {
    return std::find(ids_.begin(), ids_.end(), t.packet) != ids_.end();
  }

 private:
  std::vector<PacketId> ids_;
};

TEST(Engine, LossModelDropsAreCountedAndReported) {
  net::UniformCluster topo(3, 2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(0, tx(0, 2, 1));
  proto.at(1, tx(1, 2, 2));
  DropListed model({1});
  Engine engine(topo, proto);
  engine.set_loss_model(&model);
  Trace trace;
  engine.add_observer(trace);
  engine.run_until(3);

  EXPECT_EQ(engine.stats().transmissions, 3);  // the erased send still counts
  EXPECT_EQ(engine.stats().drops, 1);
  EXPECT_EQ(proto.delivered.size(), 2u);  // packet 1 never arrived
  EXPECT_EQ(trace.all().size(), 2u);
  ASSERT_EQ(trace.drops().size(), 1u);
  EXPECT_EQ(trace.drops()[0].tx.packet, 1);
  EXPECT_EQ(trace.drops()[0].sent, 0);
  EXPECT_EQ(trace.drops()[0].would_arrive, 0);
}

TEST(Engine, DroppedPacketCanBeSentAgain) {
  // An erased transmission never reached the duplicate filter: resending the
  // same (node, packet) later must be legal.
  net::UniformCluster topo(3, 2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(1, tx(0, 1, 0));
  Engine engine(topo, proto);
  DropListed first_only({0});
  engine.set_loss_model(&first_only);
  engine.run_until(1);
  engine.set_loss_model(nullptr);
  EXPECT_NO_THROW(engine.run_until(2));
  EXPECT_EQ(engine.stats().drops, 1);
  EXPECT_EQ(proto.delivered.size(), 1u);
}

TEST(Engine, RetransmitFlagIsCounted) {
  net::UniformCluster topo(3, 2);
  Scripted proto;
  Tx repair = tx(0, 1, 0);
  repair.retransmit = true;
  proto.at(0, repair);
  proto.at(0, tx(0, 2, 1));
  Engine engine(topo, proto);
  engine.run_until(1);
  EXPECT_EQ(engine.stats().transmissions, 2);
  EXPECT_EQ(engine.stats().retransmissions, 1);
}

TEST(Engine, RingGrowsToCoverLargeLatencies) {
  // T_c = 50 exceeds the initial ring size; the in-flight ring must grow and
  // still deliver at the exact arrival slot.
  net::ClusteredTopology topo({{.n_receivers = 2}, {.n_receivers = 2}},
                              /*big_d=*/3, /*small_d=*/2, /*t_c=*/50);
  Scripted proto;
  proto.at(0, tx(topo.super_node(0), topo.super_node(1), 7));
  proto.at(3, tx(0, topo.receiver(0, 1), 8));  // unit-latency send interleaved
  Engine engine(topo, proto);
  Recorder rec;
  engine.add_observer(rec);
  engine.run_until(49);
  ASSERT_EQ(rec.all.size(), 1u);
  EXPECT_EQ(rec.all[0].tx.packet, 8);
  engine.run_until(50);
  ASSERT_EQ(rec.all.size(), 2u);
  EXPECT_EQ(rec.all[1].tx.packet, 7);
  EXPECT_EQ(rec.all[1].received, 49);
}

/// Topology with an explicit per-pair latency matrix and generous
/// capacities, for exercising the in-flight ring's sizing rules.
class MatrixTopology final : public net::Topology {
 public:
  explicit MatrixTopology(NodeKey size) : size_(size) {
    latency_.assign(static_cast<std::size_t>(size),
                    std::vector<Slot>(static_cast<std::size_t>(size), 1));
  }
  void set_latency(NodeKey from, NodeKey to, Slot l) {
    latency_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] = l;
  }
  NodeKey size() const override { return size_; }
  Slot latency(NodeKey from, NodeKey to) const override {
    return latency_[static_cast<std::size_t>(from)]
                   [static_cast<std::size_t>(to)];
  }
  int send_capacity(NodeKey) const override { return 8; }
  int recv_capacity(NodeKey) const override { return 8; }

 private:
  NodeKey size_;
  std::vector<std::vector<Slot>> latency_;
};

TEST(Engine, LatencyExactlyEqualToRingSizeDeliversOnTime) {
  // The initial ring holds 8 buckets. A latency of exactly 8 must NOT need a
  // growth: in-flight arrivals span 8 distinct slots, which map to 8
  // distinct buckets (the off-by-one guard on the `latency > ring size`
  // growth trigger). A unit-latency delivery sharing the arrival slot and a
  // later reuse of the same bucket must all land at their exact slots.
  MatrixTopology topo(4);
  topo.set_latency(0, 1, 8);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));   // arrives slot 7, bucket 7
  proto.at(7, tx(0, 2, 1));   // unit latency: arrives slot 7, same bucket
  proto.at(8, tx(0, 1, 2));   // latency 8 again: arrives slot 15, bucket 7
  Engine engine(topo, proto);
  Recorder rec;
  engine.add_observer(rec);
  engine.run_until(7);
  EXPECT_TRUE(rec.all.empty());
  engine.run_until(8);
  ASSERT_EQ(rec.all.size(), 2u);
  EXPECT_EQ(rec.all[0].tx.packet, 0);
  EXPECT_EQ(rec.all[0].received, 7);
  EXPECT_EQ(rec.all[1].tx.packet, 1);
  EXPECT_EQ(rec.all[1].received, 7);
  engine.run_until(16);
  ASSERT_EQ(rec.all.size(), 3u);
  EXPECT_EQ(rec.all[2].tx.packet, 2);
  EXPECT_EQ(rec.all[2].received, 15);
}

TEST(Engine, RingGrowsMidRunWithInFlightDeliveries) {
  // Two growths (8 -> 32 -> 64) while earlier deliveries are still in
  // flight: every rebucketed delivery must still arrive at its exact slot.
  MatrixTopology topo(4);
  topo.set_latency(0, 1, 6);
  topo.set_latency(0, 2, 20);
  topo.set_latency(0, 3, 40);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));  // arrives slot 5 (in flight through both grows)
  proto.at(2, tx(0, 2, 1));  // latency 20: grow to 32, arrives slot 21
  proto.at(3, tx(0, 3, 2));  // latency 40: grow to 64, arrives slot 42
  Engine engine(topo, proto);
  Recorder rec;
  engine.add_observer(rec);
  engine.run_until(43);
  ASSERT_EQ(rec.all.size(), 3u);
  EXPECT_EQ(rec.all[0].tx.packet, 0);
  EXPECT_EQ(rec.all[0].received, 5);
  EXPECT_EQ(rec.all[1].tx.packet, 1);
  EXPECT_EQ(rec.all[1].received, 21);
  EXPECT_EQ(rec.all[2].tx.packet, 2);
  EXPECT_EQ(rec.all[2].received, 42);
}

TEST(Engine, DuplicateDetectionSurvivesBitmapGrowth) {
  // Far-apart stream ids force the per-node seen-bitmap to grow; detection
  // must hold across the growth and stay per-node.
  net::UniformCluster topo(3, 4);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(1, tx(0, 1, 1000000));
  proto.at(2, tx(0, 2, 1000000));  // same packet, other node: fine
  proto.at(3, tx(2, 1, 1000000));  // duplicate at node 1
  Engine engine(topo, proto);
  engine.run_until(3);
  EXPECT_EQ(engine.stats().duplicate_deliveries, 0);
  EXPECT_THROW(engine.run_until(4), ProtocolViolation);
}

TEST(Engine, ControlIdDuplicatesAreDetected) {
  // Ids at or above kControlIdBase use the sparse set, with the
  // non-overlapping (node << 40 | packet) key: distinct (node, packet)
  // pairs can never alias.
  net::UniformCluster topo(3, 4);
  const PacketId base = kControlIdBase;
  Scripted proto;
  proto.at(0, tx(0, 1, base + 5));
  proto.at(1, tx(0, 2, base + 5));  // other node: fine
  proto.at(2, tx(2, 1, base + 5));  // duplicate at node 1
  Engine engine(topo, proto);
  engine.run_until(2);
  EXPECT_EQ(engine.stats().duplicate_deliveries, 0);
  EXPECT_THROW(engine.run_until(3), ProtocolViolation);
}

TEST(Engine, DeliveriesAreCounted) {
  net::UniformCluster topo(3, 2);
  Scripted proto;
  proto.at(0, tx(0, 1, 0));
  proto.at(0, tx(0, 2, 1));
  proto.at(1, tx(1, 2, 0));
  DropListed model({1});
  Engine engine(topo, proto);
  engine.set_loss_model(&model);
  engine.run_until(2);
  EXPECT_EQ(engine.stats().transmissions, 3);
  EXPECT_EQ(engine.stats().drops, 1);
  EXPECT_EQ(engine.stats().deliveries, 2);
}

TEST(Trace, QueriesBySenderReceiverAndSlot) {
  Trace trace;
  trace.record(Delivery{.sent = 0, .received = 0, .tx = tx(0, 1, 5)});
  trace.record(Delivery{.sent = 1, .received = 1, .tx = tx(1, 2, 5)});
  trace.record(Delivery{.sent = 1, .received = 1, .tx = tx(0, 3, 6)});
  EXPECT_EQ(trace.all().size(), 3u);
  EXPECT_EQ(trace.received_by(2).size(), 1u);
  EXPECT_EQ(trace.sent_by(0).size(), 2u);
  EXPECT_EQ(trace.sent_in(1).size(), 2u);
  EXPECT_EQ(trace.sent_in(7).size(), 0u);
}

}  // namespace
}  // namespace streamcast::sim
