#include <gtest/gtest.h>

#include "src/metrics/buffers.hpp"
#include "src/metrics/delay.hpp"
#include "src/metrics/neighbors.hpp"
#include "src/metrics/summary.hpp"

namespace streamcast::metrics {
namespace {

sim::Delivery make(NodeKey from, NodeKey to, PacketId p, Slot at) {
  return sim::Delivery{
      .sent = at,
      .received = at,
      .tx = {.from = from, .to = to, .packet = p, .tag = 0}};
}

TEST(DelayRecorder, PaperNodeOneExample) {
  // §2.3: node 1 receives packets 0, 1, 2 in slots 0, 2, 1. Playback delay
  // under our convention: max(0-0, 2-1, 1-2) = 1.
  DelayRecorder rec(/*nodes=*/2, /*window=*/3);
  rec.on_delivery(make(0, 1, 0, 0));
  rec.on_delivery(make(0, 1, 1, 2));
  rec.on_delivery(make(0, 1, 2, 1));
  ASSERT_TRUE(rec.complete(1));
  EXPECT_EQ(rec.playback_delay(1), 1);
}

TEST(DelayRecorder, IncompleteWindowHasNoDelay) {
  DelayRecorder rec(2, 3);
  rec.on_delivery(make(0, 1, 0, 0));
  EXPECT_FALSE(rec.complete(1));
  EXPECT_EQ(rec.playback_delay(1), std::nullopt);
  EXPECT_THROW(rec.worst_delay(1, 1), std::logic_error);
}

TEST(DelayRecorder, FirstArrivalWins) {
  DelayRecorder rec(2, 1);
  rec.on_delivery(make(0, 1, 0, 5));
  rec.on_delivery(make(0, 1, 0, 2));  // later report of an earlier slot is
                                      // ignored: first delivery stands
  EXPECT_EQ(rec.arrival(1, 0), 5);
}

TEST(DelayRecorder, PacketsOutsideWindowIgnored) {
  DelayRecorder rec(2, 2);
  rec.on_delivery(make(0, 1, 7, 0));
  EXPECT_FALSE(rec.complete(1));
}

TEST(DelayRecorder, WorstAndAverageOverRange) {
  DelayRecorder rec(4, 2);
  // node 1: arrivals 0,1 -> a=0; node 2: 1,2 -> a=1; node 3: 4,2 -> a=4.
  rec.on_delivery(make(0, 1, 0, 0));
  rec.on_delivery(make(0, 1, 1, 1));
  rec.on_delivery(make(0, 2, 0, 1));
  rec.on_delivery(make(0, 2, 1, 2));
  rec.on_delivery(make(0, 3, 0, 4));
  rec.on_delivery(make(0, 3, 1, 2));
  EXPECT_EQ(rec.worst_delay(1, 3), 4);
  EXPECT_DOUBLE_EQ(rec.average_delay(1, 3), (0.0 + 1.0 + 4.0) / 3.0);
  EXPECT_EQ(rec.delays(1, 3), (std::vector<Slot>{0, 1, 4}));
}

TEST(BufferOccupancy, InOrderUnitRateNeedsOnePacket) {
  // Packet j arrives in slot j, playback starts at 0: buffer holds exactly
  // the packet being played.
  const std::vector<Slot> arrivals{0, 1, 2, 3};
  EXPECT_EQ(max_buffer_occupancy(arrivals, 0), 1u);
}

TEST(BufferOccupancy, DelayedStartAccumulates) {
  const std::vector<Slot> arrivals{0, 1, 2, 3};
  // Start at 3: by slot 3 packets 0..3 arrived, only packet 0 played.
  EXPECT_EQ(max_buffer_occupancy(arrivals, 3), 4u);
}

TEST(BufferOccupancy, SeriesShape) {
  const std::vector<Slot> arrivals{0, 2, 1};
  const auto series = occupancy_series(arrivals, /*start=*/2);
  // During slot 0: {p0}; slot 1: {p0,p2}; slot 2: +p1, p0 playing -> 3;
  // slot 3: p0 gone, p1 playing -> 2; slot 4: p2 playing -> 1.
  EXPECT_EQ(series, (std::vector<std::size_t>{1, 2, 3, 2, 1}));
}

TEST(BufferOccupancy, PaperNodeOneNeedsThreeWithStartThree) {
  // §2.3: "node 1 will receive packets 0, 1, and 2 in time slots 0, 2, and
  // 1, respectively. Therefore a buffer size of 3 is sufficient for node 1."
  // (The paper starts playback after one packet from each of the d=3 trees.)
  const std::vector<Slot> arrivals{0, 2, 1};
  EXPECT_EQ(max_buffer_occupancy(arrivals, /*start=*/3), 3u);
}

TEST(BufferOccupancy, InfeasibleStartThrows) {
  const std::vector<Slot> arrivals{5, 6};
  EXPECT_THROW(occupancy_series(arrivals, 0), std::logic_error);
}

TEST(BufferOccupancy, PerNodeViaRecorder) {
  DelayRecorder rec(2, 3);
  rec.on_delivery(make(0, 1, 0, 0));
  rec.on_delivery(make(0, 1, 1, 2));
  rec.on_delivery(make(0, 1, 2, 1));
  const auto occ = max_occupancies(rec, 1, 1);
  ASSERT_EQ(occ.size(), 1u);
  // a(1) = 1. During-slot occupancy: t0 {p0}; t1 {p0 playing, p2} -> 2;
  // t2 {p1 arriving+playing, p2} -> 2; t3 {p2 playing} -> 1. Max is 2.
  EXPECT_EQ(occ[0], 2u);
}

TEST(NeighborRecorder, CountsBothDirectionsDistinct) {
  NeighborRecorder rec(5);
  rec.on_delivery(make(0, 1, 0, 0));
  rec.on_delivery(make(1, 2, 0, 1));
  rec.on_delivery(make(1, 2, 1, 2));  // repeat partner: still one neighbor
  rec.on_delivery(make(3, 1, 5, 2));
  EXPECT_EQ(rec.count(1), 3u);  // 0, 2, 3
  EXPECT_EQ(rec.count(2), 1u);
  EXPECT_EQ(rec.count(4), 0u);
  EXPECT_EQ(rec.max_count(1, 4), 3u);
  EXPECT_DOUBLE_EQ(rec.mean_count(1, 4), (3.0 + 1.0 + 1.0 + 0.0) / 4.0);
}

TEST(Summary, BasicStatistics) {
  const std::vector<double> v{4, 1, 3, 2, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.p50, 3);
  EXPECT_DOUBLE_EQ(s.p95, 5);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
}

TEST(Summary, SlotOverload) {
  const std::vector<sim::Slot> v{10, 20};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 15);
}

}  // namespace
}  // namespace streamcast::metrics
