// Super-tree tests: backbone shape (Figure 1), end-to-end delivery across
// clusters, and Theorem 1's delay bound.
#include <gtest/gtest.h>

#include "src/metrics/delay.hpp"
#include "src/multitree/analysis.hpp"
#include "src/net/topology.hpp"
#include "src/sim/engine.hpp"
#include "src/supertree/analysis.hpp"
#include "src/supertree/backbone.hpp"
#include "src/supertree/protocol.hpp"

namespace streamcast::supertree {
namespace {

TEST(Backbone, Figure1Shape) {
  // Figure 1: K = 9 clusters, D = 3. S feeds S_1..S_3; each of those feeds
  // up to D-1 = 2 more: S_1 -> {S_4, S_5}, S_2 -> {S_6, S_7},
  // S_3 -> {S_8, S_9} (0-indexed here).
  const Backbone bb = build_backbone(9, 3);
  EXPECT_EQ(bb.parent[0], -1);
  EXPECT_EQ(bb.parent[1], -1);
  EXPECT_EQ(bb.parent[2], -1);
  EXPECT_EQ(bb.parent[3], 0);
  EXPECT_EQ(bb.parent[4], 0);
  EXPECT_EQ(bb.parent[5], 1);
  EXPECT_EQ(bb.parent[6], 1);
  EXPECT_EQ(bb.parent[7], 2);
  EXPECT_EQ(bb.parent[8], 2);
  EXPECT_EQ(bb.max_depth(), 2);
}

TEST(Backbone, DegreeLimitsRespected) {
  for (const int k : {1, 2, 3, 5, 10, 17, 40, 100}) {
    for (const int big_d : {3, 4, 5}) {
      const Backbone bb = build_backbone(k, big_d);
      int roots = 0;
      for (int c = 0; c < k; ++c) {
        if (bb.parent[static_cast<std::size_t>(c)] == -1) ++roots;
        EXPECT_LE(static_cast<int>(bb.kids[static_cast<std::size_t>(c)].size()),
                  big_d - 1);
      }
      EXPECT_LE(roots, big_d);
      // Tight: depth within one of the information-theoretic minimum.
      int min_depth = 1;
      std::int64_t reach = big_d;
      std::int64_t layer = big_d;
      while (reach < k) {
        layer *= (big_d - 1);
        reach += layer;
        ++min_depth;
      }
      EXPECT_EQ(bb.max_depth(), min_depth) << "k=" << k << " D=" << big_d;
    }
  }
}

TEST(Backbone, RejectsBadArguments) {
  EXPECT_THROW(build_backbone(0, 3), std::invalid_argument);
  EXPECT_THROW(build_backbone(5, 2), std::invalid_argument);
}

struct SuperRun {
  metrics::DelayRecorder delays;
  Slot worst = 0;
};

SuperRun run_supertree(int clusters, NodeKey per_cluster, int big_d,
                       int small_d, Slot t_c, sim::PacketId window) {
  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      static_cast<std::size_t>(clusters),
      net::ClusteredTopology::ClusterSpec{per_cluster});
  net::ClusteredTopology topo(specs, big_d, small_d, t_c);
  SuperTreeProtocol proto(topo);
  sim::Engine engine(topo, proto);
  SuperRun run{metrics::DelayRecorder(topo.size(), window), 0};
  engine.add_observer(run.delays);
  const Slot bound = structural_bound(clusters, big_d, t_c, 1, small_d,
                                      per_cluster);
  engine.run_until(window + bound + 8);
  Slot worst = 0;
  for (int c = 0; c < clusters; ++c) {
    for (NodeKey x = 1; x <= per_cluster; ++x) {
      const auto a = run.delays.playback_delay(topo.receiver(c, x));
      EXPECT_TRUE(a.has_value()) << "cluster " << c << " node " << x;
      if (a) worst = std::max(worst, *a);
    }
  }
  run.worst = worst;
  return run;
}

TEST(SuperTree, SingleClusterMatchesPlainMultiTreePlusBackboneHop) {
  // One cluster at depth 1: packets reach S'_1 at slot j + T_c - 1 + T_i,
  // then the plain multi-tree schedule runs gated on those arrivals.
  const auto run = run_supertree(1, 15, 3, 3, /*t_c=*/5, /*window=*/40);
  EXPECT_LE(run.worst, structural_bound(1, 3, 5, 1, 3, 15));
  // The backbone contributes at least T_c + T_i slots end to end.
  EXPECT_GE(run.worst, 5);
}

TEST(SuperTree, EveryReceiverCompletesAcrossClusters) {
  const auto run = run_supertree(9, 12, 3, 2, /*t_c=*/7, /*window=*/40);
  EXPECT_LE(run.worst, structural_bound(9, 3, 7, 1, 2, 12));
}

TEST(SuperTree, DelayGrowsWithTc) {
  const auto slow = run_supertree(9, 12, 3, 2, /*t_c=*/20, /*window=*/40);
  const auto fast = run_supertree(9, 12, 3, 2, /*t_c=*/5, /*window=*/40);
  EXPECT_GT(slow.worst, fast.worst);
  // Two backbone hops: the gap should reflect depth * (T_c difference).
  EXPECT_GE(slow.worst - fast.worst, 2 * (20 - 5) - 2);
}

TEST(SuperTree, DeeperBackboneCostsMoreHops) {
  // K = 40, D = 3 -> depth 3; K = 3 -> depth 1 (same cluster size).
  const auto deep = run_supertree(40, 6, 3, 2, /*t_c=*/10, /*window=*/30);
  const auto flat = run_supertree(3, 6, 3, 2, /*t_c=*/10, /*window=*/30);
  EXPECT_GT(deep.worst, flat.worst);
}

TEST(SuperTree, StructuralBoundWithinTheoremOneShape) {
  // The theorem's closed form is asymptotic; check our structural bound
  // stays within a small constant factor of it over a parameter sweep.
  for (const int k : {2, 9, 27, 81}) {
    for (const Slot t_c : {5, 20, 50}) {
      const int d = 2;
      const NodeKey n = 30;
      const int h = multitree::tree_height(n, d);
      const double thm = theorem1_bound(k, 3, t_c, 1, d, h);
      const double ours = static_cast<double>(
          structural_bound(k, 3, t_c, 1, d, n));
      EXPECT_LT(ours, 3.0 * thm + 40.0) << "k=" << k << " tc=" << t_c;
    }
  }
}

// ---------------------------------------------------------------------------
// Hypercube-in-clusters composition (§3: "easily adapted to streaming over
// multiple clusters, using the tree τ").
// ---------------------------------------------------------------------------

SuperRun run_supertree_cubes(int clusters, NodeKey per_cluster, int big_d,
                             Slot t_c, sim::PacketId window) {
  std::vector<net::ClusteredTopology::ClusterSpec> specs(
      static_cast<std::size_t>(clusters),
      net::ClusteredTopology::ClusterSpec{per_cluster});
  net::ClusteredTopology topo(specs, big_d, /*small_d=*/1, t_c);
  SuperTreeProtocol proto(topo, IntraScheme::kHypercube);
  sim::Engine engine(topo, proto);
  SuperRun run{metrics::DelayRecorder(topo.size(), window), 0};
  engine.add_observer(run.delays);
  const Slot bound = structural_bound_hypercube(clusters, big_d, t_c, 1,
                                                per_cluster);
  engine.run_until(window + bound + 8);
  Slot worst = 0;
  for (int c = 0; c < clusters; ++c) {
    for (NodeKey x = 1; x <= per_cluster; ++x) {
      const auto a = run.delays.playback_delay(topo.receiver(c, x));
      EXPECT_TRUE(a.has_value()) << "cluster " << c << " node " << x;
      if (a) worst = std::max(worst, *a);
    }
  }
  run.worst = worst;
  return run;
}

TEST(SuperTreeHypercube, SpecialClusterSizeMeetsOffsetPlusK) {
  // 7-node clusters (k = 3): every member of a depth-L cluster can start at
  // exactly L*T_c + T_i + 3.
  const int t_c = 10;
  const auto run = run_supertree_cubes(9, 7, 3, t_c, 60);
  // Deepest cluster: depth 2 -> 2*10 + 1 + 3 = 24.
  EXPECT_EQ(run.worst, 2 * t_c + 1 + 3);
}

TEST(SuperTreeHypercube, ArbitraryClusterSizesWithinBound) {
  const auto run = run_supertree_cubes(5, 11, 3, /*t_c=*/7, /*window=*/80);
  EXPECT_LE(run.worst, structural_bound_hypercube(5, 3, 7, 1, 11));
}

TEST(SuperTreeHypercube, DelayScalesWithTcLikeMultiTree) {
  const auto slow = run_supertree_cubes(9, 7, 3, /*t_c=*/20, /*window=*/50);
  const auto fast = run_supertree_cubes(9, 7, 3, /*t_c=*/5, /*window=*/50);
  EXPECT_EQ(slow.worst - fast.worst, 2 * (20 - 5));  // depth 2 pipeline
}

TEST(SuperTree, HeterogeneousClusterSizes) {
  // "each cluster having at most N nodes" — clusters need not be equal.
  std::vector<net::ClusteredTopology::ClusterSpec> specs{
      {30}, {5}, {17}, {1}, {12}};
  net::ClusteredTopology topo(specs, 3, 2, /*t_c=*/6);
  SuperTreeProtocol proto(topo);
  sim::Engine engine(topo, proto);
  const sim::PacketId window = 40;
  metrics::DelayRecorder delays(topo.size(), window);
  engine.add_observer(delays);
  engine.run_until(window + structural_bound(5, 3, 6, 1, 2, 30) + 8);
  for (int c = 0; c < 5; ++c) {
    const auto n = topo.cluster_receivers(c);
    for (sim::NodeKey x = 1; x <= n; ++x) {
      const auto a = delays.playback_delay(topo.receiver(c, x));
      ASSERT_TRUE(a.has_value()) << "cluster " << c << " node " << x;
      // Each cluster obeys its own bound (depth 1 here: K=5 <= D... first 3
      // at depth 1, rest depth 2).
      EXPECT_LE(*a, structural_bound(5, 3, 6, 1, 2, n)) << "cluster " << c;
    }
  }
}

TEST(SuperTree, RejectsEmptyCluster) {
  std::vector<net::ClusteredTopology::ClusterSpec> specs{{5}, {0}};
  net::ClusteredTopology topo(specs, 3, 2, 5);
  EXPECT_THROW(SuperTreeProtocol proto(topo), std::invalid_argument);
}

}  // namespace
}  // namespace streamcast::supertree
