// Failure-path coverage for validate_forest / validate_greedy_parity: each
// of the four documented corruption modes (uninstalled tree, dummy interior,
// node interior twice, child-index collision) plus the greedy parity check
// must be reported with its specific error string — the validators are the
// audit layer's structural counterpart, so their *negative* behavior is as
// load-bearing as the positive one.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/multitree/forest.hpp"
#include "src/multitree/greedy.hpp"
#include "src/multitree/validate.hpp"

namespace streamcast::multitree {
namespace {

bool mentions(const ValidationReport& report, const std::string& needle) {
  return std::ranges::any_of(report.errors, [&](const std::string& e) {
    return e.find(needle) != std::string::npos;
  });
}

/// Swaps the nodes at two positions of tree k and reinstalls it (the swap
/// preserves the permutation property set_tree enforces).
void swap_positions(Forest& forest, int k, NodeKey pos_a, NodeKey pos_b) {
  std::vector<NodeKey> tree = forest.tree(k);
  std::swap(tree[static_cast<std::size_t>(pos_a)],
            tree[static_cast<std::size_t>(pos_b)]);
  forest.set_tree(k, std::move(tree));
}

TEST(ValidateFailure, UninstalledTreeReported) {
  Forest empty(5, 2);  // trees never installed
  const ValidationReport report = validate_forest(empty);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "tree 0 not installed"))
      << report.errors.front();
}

TEST(ValidateFailure, DummyInteriorReported) {
  // N = 11, d = 2 pads to 12: node 12 is a dummy and must stay a leaf.
  Forest forest = build_greedy(11, 2);
  ASSERT_TRUE(forest.is_dummy(12));
  const NodeKey dummy_pos = forest.position_of(0, 12);
  ASSERT_FALSE(forest.is_interior_pos(dummy_pos));
  swap_positions(forest, 0, dummy_pos, /*interior=*/1);
  const ValidationReport report = validate_forest(forest);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "dummy is interior"));
  EXPECT_TRUE(mentions(report, "node 12"));
}

TEST(ValidateFailure, InteriorInTwoTreesReported) {
  // N = 12, d = 2 is dummy-free. Moving a node that is interior in tree 1
  // onto an interior position of tree 0 makes it interior twice.
  Forest forest = build_greedy(12, 2);
  NodeKey victim = 0;
  for (NodeKey node = 1; node <= forest.n_pad(); ++node) {
    if (forest.interior_tree_of(node) == 1) {
      victim = node;
      break;
    }
  }
  ASSERT_NE(victim, 0);
  const NodeKey leaf_pos = forest.position_of(0, victim);
  ASSERT_FALSE(forest.is_interior_pos(leaf_pos));
  swap_positions(forest, 0, leaf_pos, /*interior=*/1);
  const ValidationReport report = validate_forest(forest);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "node interior in 2 trees"));
  EXPECT_TRUE(mentions(report, "(node " + std::to_string(victim) + ")"));
}

TEST(ValidateFailure, ChildIndexCollisionReported) {
  // Swapping two *leaf* positions with different child indices leaves the
  // interior structure intact but gives both nodes a repeated child index
  // across the two trees — exactly the congruence the round-robin schedule
  // needs (a receiver would get two packets in one slot).
  Forest forest = build_greedy(12, 2);
  const NodeKey pos_a = forest.interior() + 1;
  const NodeKey pos_b = forest.interior() + 2;
  ASSERT_NE(forest.child_index(pos_a), forest.child_index(pos_b));
  const NodeKey node_a = forest.node_at(0, pos_a);
  swap_positions(forest, 0, pos_a, pos_b);
  const ValidationReport report = validate_forest(forest);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "child-index collision mod d"));
  EXPECT_TRUE(mentions(report, "node " + std::to_string(node_a)));
}

TEST(ValidateFailure, GreedyParityMismatchReported) {
  Forest forest = build_greedy(12, 2);
  ASSERT_TRUE(validate_greedy_parity(forest).ok);
  swap_positions(forest, 0, forest.interior() + 1, forest.interior() + 2);
  const ValidationReport report = validate_greedy_parity(forest);
  ASSERT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "greedy parity slot mismatch"));
}

TEST(ValidateFailure, PristineForestsPassBothValidators) {
  const Forest forest = build_greedy(12, 2);
  EXPECT_TRUE(validate_forest(forest).ok);
  EXPECT_TRUE(validate_greedy_parity(forest).ok);
}

}  // namespace
}  // namespace streamcast::multitree
